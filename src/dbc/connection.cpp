#include "dbc/connection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "sql/parser.h"
#include "telemetry/hooks.h"

namespace sqloop::dbc {

Connection::Connection(std::shared_ptr<minidb::Database> db,
                       int64_t latency_us, int64_t row_cost_ns,
                       std::shared_ptr<FaultInjector> fault_injector,
                       int64_t compile_us, int64_t memory_limit_bytes,
                       int64_t cancel_check_rows)
    : db_(std::move(db)),
      executor_(*db_),
      tracker_("connection", &db_->memory_tracker(), memory_limit_bytes),
      latency_us_(latency_us),
      row_cost_ns_(row_cost_ns),
      compile_us_(compile_us),
      fault_(std::move(fault_injector)) {
  // Accounting A/B ablation (bench/micro_governance): a database with
  // governance disabled hands its connections no tracker at all, so the
  // engine's charge hooks cost one null check per flush.
  if (db_->governance_enabled()) {
    executor_.set_memory_tracker(&tracker_);
  }
  if (cancel_check_rows > 0) {
    executor_.set_cancel_check_rows(cancel_check_rows);
  }
  db_->OnConnectionOpened();
}

Connection::~Connection() {
  if (!closed_) {
    try {
      Close();
    } catch (...) {
      // Destructors must not throw; an implicit rollback failure on close
      // leaves the database as-is.
    }
  }
}

void Connection::set_recorder(telemetry::Recorder* recorder) noexcept {
  recorder_ = recorder;
  // The embedded engine attributes server-side costs (rows examined,
  // lock waits) to the same recorder.
  executor_.set_recorder(recorder);
}

void Connection::PayRoundTrip() {
  ++stats_.round_trips;
  SQLOOP_COUNT(recorder_, "dbc.round_trips", 1);
  if (latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
}

void Connection::PayServerWork(size_t rows_examined) {
  if (row_cost_ns_ <= 0 || rows_examined == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(
      row_cost_ns_ * static_cast<int64_t>(rows_examined)));
}

void Connection::PayCompile(size_t statements) {
  if (compile_us_ <= 0 || statements == 0) return;
  SQLOOP_COUNT(recorder_, "dbc.server_compiles", statements);
  std::this_thread::sleep_for(std::chrono::microseconds(
      compile_us_ * static_cast<int64_t>(statements)));
}

void Connection::EnsureOpen() const {
  if (closed_) throw ConnectionError("connection is closed");
}

void Connection::DropNow() {
  // A real network drop aborts the server-side session: any open
  // transaction is rolled back by the engine, and the client handle is
  // dead from here on.
  if (in_explicit_txn_ || session_.in_transaction()) {
    // Covers both driver-managed transactions (autocommit off) and a raw
    // BEGIN the caller sent as SQL.
    executor_.ExecuteSql("ROLLBACK", &session_);
    in_explicit_txn_ = false;
  }
  closed_ = true;
  db_->OnConnectionClosed();
}

void Connection::ThrowIfSuperseded() const {
  if (cancel_ && cancel_->load(std::memory_order_acquire)) {
    throw TaskSupersededError(
        "a speculative copy of this task took ownership");
  }
}

void Connection::ThrowIfCancelled() const {
  if (token_ != nullptr) token_->ThrowIfRequested();
}

void Connection::ArmStatementDeadline() {
  if (statement_timeout_ms_ > 0) {
    executor_.set_statement_deadline(
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(statement_timeout_ms_));
  }
}

void Connection::InterruptibleSleep(int64_t delay_us) const {
  // 1ms slices: an injected slow statement reacts to a cancel request
  // within a millisecond instead of serving out the whole delay.
  constexpr int64_t kSliceUs = 1000;
  while (delay_us > 0) {
    ThrowIfSuperseded();
    ThrowIfCancelled();
    const int64_t slice = std::min(delay_us, kSliceUs);
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    delay_us -= slice;
  }
  ThrowIfSuperseded();
  ThrowIfCancelled();
}

void Connection::MaybeInjectFault() {
  if (!fault_) return;
  switch (fault_->NextStatementFault()) {
    case FaultKind::kNone:
      return;
    case FaultKind::kDrop:
      DropNow();
      throw ConnectionLostError("injected connection drop");
    case FaultKind::kTransient:
      throw TransientError("injected transient engine fault");
    case FaultKind::kSlow: {
      const int64_t delay_us = fault_->slow_us();
      if (statement_timeout_ms_ > 0 &&
          delay_us >= statement_timeout_ms_ * 1000) {
        // The statement would miss its deadline: the client gives up at
        // the deadline and the engine never applies the statement.
        InterruptibleSleep(statement_timeout_ms_ * 1000);
        throw TimeoutError("statement exceeded " +
                           std::to_string(statement_timeout_ms_) +
                           "ms deadline");
      }
      InterruptibleSleep(delay_us);
      return;
    }
  }
}

void Connection::Reopen() {
  if (!closed_) return;
  if (fault_ && fault_->ShouldFailConnect()) {
    throw ConnectionLostError("injected reconnect failure");
  }
  closed_ = false;
  in_explicit_txn_ = false;
  db_->OnConnectionOpened();
  PayRoundTrip();  // the reconnect handshake costs one round trip
}

void Connection::EnsureTransactionIfNeeded() {
  // JDBC: with autocommit off, a transaction is implicitly opened by the
  // first statement and stays open until commit()/rollback().
  if (!autocommit_ && !in_explicit_txn_) {
    executor_.ExecuteSql("BEGIN", &session_);
    in_explicit_txn_ = true;
  }
}

ResultSet Connection::Execute(std::string_view sql) {
  EnsureOpen();
  ThrowIfSuperseded();
  ThrowIfCancelled();
  // Faults fire before the engine sees the statement (see fault.h): a
  // failure here is client-visible but leaves server state untouched, so
  // the caller may safely retry.
  MaybeInjectFault();
  // Last cancellation point for the straggler flag: past here the
  // statement reaches the engine and always completes, keeping the task's
  // piece progress exact. The governance token has no such exactly-once
  // contract — it keeps preempting inside the engine.
  ThrowIfSuperseded();
  ThrowIfCancelled();
  PayRoundTrip();
  ++stats_.statements;
  SQLOOP_COUNT(recorder_, "dbc.statements", 1);
  EnsureTransactionIfNeeded();
  ArmStatementDeadline();
  ResultSet result;
  try {
    result = executor_.ExecuteSql(sql, &session_);
  } catch (...) {
    // A stale armed deadline must not leak into later statements (the
    // implicit ROLLBACK on Close would spuriously time out).
    executor_.clear_statement_deadline();
    throw;
  }
  executor_.clear_statement_deadline();
  if (result.compiled) PayCompile();
  PayServerWork(result.rows_examined);
  return result;
}

size_t Connection::ExecuteUpdate(std::string_view sql) {
  return Execute(sql).affected_rows;
}

void Connection::AddBatch(std::string sql) {
  EnsureOpen();
  batch_.push_back(std::move(sql));
}

std::vector<size_t> Connection::ExecuteBatch() {
  EnsureOpen();
  ThrowIfSuperseded();
  ThrowIfCancelled();
  // One injection decision for the whole batch: it ships as a single
  // submission, so a fault strikes before ANY queued statement executes.
  // The queued batch is preserved on failure for resubmission.
  MaybeInjectFault();
  // Cancellation must not strike between a batch's statements (the whole
  // batch is the retry unit), so this is its only post-injection check.
  ThrowIfSuperseded();
  ThrowIfCancelled();
  PayRoundTrip();  // the whole batch ships in one round trip
  SQLOOP_COUNT(recorder_, "dbc.batches", 1);
  SQLOOP_COUNT(recorder_, "dbc.batch_statements", batch_.size());
  EnsureTransactionIfNeeded();
  // No mid-statement deadline inside a batch: a transient TimeoutError
  // striking after a prefix of the batch applied would make the retrier
  // resubmit — and double-apply — that prefix. The deadline stays at the
  // injection point for batches. The governance token still preempts
  // mid-batch: cancel and quota errors are fatal, so no retry ever
  // resubmits the prefix.
  std::vector<size_t> affected;
  affected.reserve(batch_.size());
  size_t rows_examined = 0;
  size_t compiles = 0;
  for (const std::string& sql : batch_) {
    ++stats_.statements;
    SQLOOP_COUNT(recorder_, "dbc.statements", 1);
    ResultSet result = executor_.ExecuteSql(sql, &session_);
    rows_examined += result.rows_examined;
    if (result.compiled) ++compiles;
    affected.push_back(result.affected_rows);
  }
  batch_.clear();
  PayCompile(compiles);
  PayServerWork(rows_examined);
  return affected;
}

void Connection::SetAutoCommit(bool autocommit) {
  EnsureOpen();
  if (autocommit && in_explicit_txn_) Commit();
  autocommit_ = autocommit;
}

void Connection::Commit() {
  EnsureOpen();
  if (in_explicit_txn_) {
    PayRoundTrip();
    executor_.ExecuteSql("COMMIT", &session_);
    in_explicit_txn_ = false;
  }
}

void Connection::Rollback() {
  EnsureOpen();
  if (in_explicit_txn_) {
    PayRoundTrip();
    executor_.ExecuteSql("ROLLBACK", &session_);
    in_explicit_txn_ = false;
  }
}

void Connection::Close() {
  if (closed_) return;
  if (in_explicit_txn_ || session_.in_transaction()) {
    // JDBC drivers roll back uncommitted work on close — whether the
    // transaction came from autocommit(false) or a raw BEGIN statement.
    executor_.ExecuteSql("ROLLBACK", &session_);
    in_explicit_txn_ = false;
  }
  closed_ = true;
  db_->OnConnectionClosed();
}

}  // namespace sqloop::dbc
