#include "dbc/connection.h"

#include <chrono>
#include <thread>

#include "common/error.h"
#include "sql/parser.h"
#include "telemetry/hooks.h"

namespace sqloop::dbc {

Connection::Connection(std::shared_ptr<minidb::Database> db,
                       int64_t latency_us, int64_t row_cost_ns)
    : db_(std::move(db)),
      executor_(*db_),
      latency_us_(latency_us),
      row_cost_ns_(row_cost_ns) {}

Connection::~Connection() {
  if (!closed_) {
    try {
      Close();
    } catch (...) {
      // Destructors must not throw; an implicit rollback failure on close
      // leaves the database as-is.
    }
  }
}

void Connection::set_recorder(telemetry::Recorder* recorder) noexcept {
  recorder_ = recorder;
  // The embedded engine attributes server-side costs (rows examined,
  // lock waits) to the same recorder.
  executor_.set_recorder(recorder);
}

void Connection::PayRoundTrip() {
  ++stats_.round_trips;
  SQLOOP_COUNT(recorder_, "dbc.round_trips", 1);
  if (latency_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
  }
}

void Connection::PayServerWork(size_t rows_examined) {
  if (row_cost_ns_ <= 0 || rows_examined == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(
      row_cost_ns_ * static_cast<int64_t>(rows_examined)));
}

void Connection::EnsureOpen() const {
  if (closed_) throw ConnectionError("connection is closed");
}

void Connection::EnsureTransactionIfNeeded() {
  // JDBC: with autocommit off, a transaction is implicitly opened by the
  // first statement and stays open until commit()/rollback().
  if (!autocommit_ && !in_explicit_txn_) {
    executor_.ExecuteSql("BEGIN", &session_);
    in_explicit_txn_ = true;
  }
}

ResultSet Connection::Execute(const std::string& sql) {
  EnsureOpen();
  PayRoundTrip();
  ++stats_.statements;
  SQLOOP_COUNT(recorder_, "dbc.statements", 1);
  EnsureTransactionIfNeeded();
  ResultSet result = executor_.ExecuteSql(sql, &session_);
  PayServerWork(result.rows_examined);
  return result;
}

size_t Connection::ExecuteUpdate(const std::string& sql) {
  return Execute(sql).affected_rows;
}

void Connection::AddBatch(std::string sql) {
  EnsureOpen();
  batch_.push_back(std::move(sql));
}

std::vector<size_t> Connection::ExecuteBatch() {
  EnsureOpen();
  PayRoundTrip();  // the whole batch ships in one round trip
  SQLOOP_COUNT(recorder_, "dbc.batches", 1);
  SQLOOP_COUNT(recorder_, "dbc.batch_statements", batch_.size());
  EnsureTransactionIfNeeded();
  std::vector<size_t> affected;
  affected.reserve(batch_.size());
  size_t rows_examined = 0;
  for (const std::string& sql : batch_) {
    ++stats_.statements;
    SQLOOP_COUNT(recorder_, "dbc.statements", 1);
    const ResultSet result = executor_.ExecuteSql(sql, &session_);
    rows_examined += result.rows_examined;
    affected.push_back(result.affected_rows);
  }
  batch_.clear();
  PayServerWork(rows_examined);
  return affected;
}

void Connection::SetAutoCommit(bool autocommit) {
  EnsureOpen();
  if (autocommit && in_explicit_txn_) Commit();
  autocommit_ = autocommit;
}

void Connection::Commit() {
  EnsureOpen();
  if (in_explicit_txn_) {
    PayRoundTrip();
    executor_.ExecuteSql("COMMIT", &session_);
    in_explicit_txn_ = false;
  }
}

void Connection::Rollback() {
  EnsureOpen();
  if (in_explicit_txn_) {
    PayRoundTrip();
    executor_.ExecuteSql("ROLLBACK", &session_);
    in_explicit_txn_ = false;
  }
}

void Connection::Close() {
  if (closed_) return;
  if (in_explicit_txn_) {
    // JDBC drivers roll back uncommitted work on close.
    executor_.ExecuteSql("ROLLBACK", &session_);
    in_explicit_txn_ = false;
  }
  closed_ = true;
}

}  // namespace sqloop::dbc
