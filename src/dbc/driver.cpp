#include "dbc/driver.h"

#include <charconv>
#include <mutex>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"
#include "dbc/connection.h"

namespace sqloop::dbc {
namespace {

std::mutex& HostMutex() {
  static std::mutex mutex;
  return mutex;
}

std::unordered_map<std::string, minidb::Server*>& HostMap() {
  static std::unordered_map<std::string, minidb::Server*> hosts = {
      {"localhost", &minidb::Server::Default()},
      {"127.0.0.1", &minidb::Server::Default()},
  };
  return hosts;
}

int64_t ParseInt(const std::string& text, const std::string& what) {
  int64_t value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    throw ConnectionError("malformed " + what + " '" + text + "' in URL");
  }
  return value;
}

}  // namespace

ConnectionConfig ConnectionConfig::Parse(const std::string& url) {
  static constexpr std::string_view kScheme = "minidb://";
  if (!strings::StartsWith(url, kScheme)) {
    throw ConnectionError("URL '" + url + "' must start with minidb://");
  }
  ConnectionConfig config;
  std::string rest = url.substr(kScheme.size());

  const size_t query_pos = rest.find('?');
  std::string query;
  if (query_pos != std::string::npos) {
    query = rest.substr(query_pos + 1);
    rest = rest.substr(0, query_pos);
  }

  const size_t slash = rest.find('/');
  if (slash == std::string::npos || slash + 1 >= rest.size()) {
    throw ConnectionError("URL '" + url + "' is missing a database name");
  }
  std::string authority = rest.substr(0, slash);
  config.database = rest.substr(slash + 1);

  const size_t colon = authority.find(':');
  if (colon != std::string::npos) {
    config.port =
        static_cast<int>(ParseInt(authority.substr(colon + 1), "port"));
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) {
    throw ConnectionError("URL '" + url + "' is missing a host");
  }
  config.host = authority;

  if (!query.empty()) {
    for (const std::string& pair : strings::Split(query, '&')) {
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        throw ConnectionError("malformed URL parameter '" + pair + "'");
      }
      const std::string key = strings::ToLower(pair.substr(0, eq));
      const std::string value = pair.substr(eq + 1);
      if (key == "latency_us") {
        config.latency_us = ParseInt(value, "latency_us");
        if (config.latency_us < 0) {
          throw ConnectionError("latency_us must be non-negative");
        }
      } else if (key == "row_cost_ns") {
        config.row_cost_ns = ParseInt(value, "row_cost_ns");
        if (config.row_cost_ns < 0) {
          throw ConnectionError("row_cost_ns must be non-negative");
        }
      } else if (key == "engine") {
        config.expected_engine = value;
      } else {
        throw ConnectionError("unknown URL parameter '" + key + "'");
      }
    }
  }
  return config;
}

std::unique_ptr<Connection> DriverManager::GetConnection(
    const std::string& url) {
  const ConnectionConfig config = ConnectionConfig::Parse(url);

  minidb::Server* server = nullptr;
  {
    const std::scoped_lock lock(HostMutex());
    const auto it = HostMap().find(strings::ToLower(config.host));
    if (it != HostMap().end()) server = it->second;
  }
  if (server == nullptr) {
    throw ConnectionError("no database server registered for host '" +
                          config.host + "'");
  }

  auto db = server->FindDatabase(config.database);
  if (!db) {
    throw ConnectionError("database '" + config.database +
                          "' does not exist on host '" + config.host + "'");
  }
  if (!config.expected_engine.empty()) {
    const auto expected =
        minidb::EngineProfile::ByName(config.expected_engine);
    if (expected.name != db->profile().name) {
      throw ConnectionError("database '" + config.database + "' runs " +
                            db->profile().name + ", not the requested " +
                            expected.name);
    }
  }
  return std::make_unique<Connection>(std::move(db), config.latency_us,
                                      config.row_cost_ns);
}

void DriverManager::RegisterHost(const std::string& host,
                                 minidb::Server* server) {
  const std::scoped_lock lock(HostMutex());
  const std::string folded = strings::ToLower(host);
  if (server == nullptr) {
    HostMap().erase(folded);
  } else {
    HostMap()[folded] = server;
  }
}

}  // namespace sqloop::dbc
