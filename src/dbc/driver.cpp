#include "dbc/driver.h"

#include <charconv>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/strings.h"
#include "dbc/connection.h"

namespace sqloop::dbc {
namespace {

std::mutex& HostMutex() {
  static std::mutex mutex;
  return mutex;
}

std::unordered_map<std::string, minidb::Server*>& HostMap() {
  static std::unordered_map<std::string, minidb::Server*> hosts = {
      {"localhost", &minidb::Server::Default()},
      {"127.0.0.1", &minidb::Server::Default()},
  };
  return hosts;
}

int64_t ParseInt(const std::string& text, const std::string& what) {
  int64_t value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    throw ConnectionError("malformed " + what + " '" + text + "' in URL");
  }
  return value;
}

int64_t ParseNonNegative(const std::string& text, const std::string& what) {
  const int64_t value = ParseInt(text, what);
  if (value < 0) throw ConnectionError(what + " must be non-negative");
  return value;
}

int64_t ParsePositive(const std::string& text, const std::string& what) {
  const int64_t value = ParseInt(text, what);
  if (value < 1) throw ConnectionError(what + " must be positive");
  return value;
}

double ParseRate(const std::string& text, const std::string& what) {
  double value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    throw ConnectionError("malformed " + what + " '" + text + "' in URL");
  }
  if (value < 0.0 || value > 1.0) {
    throw ConnectionError(what + " must be within [0, 1]");
  }
  return value;
}

std::mutex& InjectorMutex() {
  static std::mutex mutex;
  return mutex;
}

/// Connections opened with identical host/database/fault configuration
/// share one injector, so a fixed fault_seed produces one deterministic
/// fault schedule across the master and every (re)opened worker
/// connection of a run.
std::unordered_map<std::string, std::shared_ptr<FaultInjector>>&
InjectorMap() {
  static std::unordered_map<std::string, std::shared_ptr<FaultInjector>> map;
  return map;
}

std::string InjectorKey(const ConnectionConfig& config) {
  std::ostringstream key;
  const FaultConfig& f = config.fault;
  key << strings::ToLower(config.host) << '/' << config.database << '?'
      << f.seed << '|' << f.connect_failure_rate << '|' << f.connect_every
      << '|' << f.drop_rate << '|' << f.drop_every << '|' << f.transient_rate
      << '|' << f.transient_every << '|' << f.slow_rate << '|' << f.slow_every
      << '|' << f.slow_us << '|' << f.max_faults << '|' << f.kill_at_round;
  return key.str();
}

std::shared_ptr<FaultInjector> SharedInjectorFor(
    const ConnectionConfig& config) {
  const std::scoped_lock lock(InjectorMutex());
  auto& slot = InjectorMap()[InjectorKey(config)];
  if (!slot) slot = std::make_shared<FaultInjector>(config.fault);
  return slot;
}

}  // namespace

ConnectionConfig ConnectionConfig::Parse(const std::string& url) {
  static constexpr std::string_view kScheme = "minidb://";
  if (!strings::StartsWith(url, kScheme)) {
    throw ConnectionError("URL '" + url + "' must start with minidb://");
  }
  ConnectionConfig config;
  std::string rest = url.substr(kScheme.size());

  const size_t query_pos = rest.find('?');
  std::string query;
  if (query_pos != std::string::npos) {
    query = rest.substr(query_pos + 1);
    rest = rest.substr(0, query_pos);
  }

  const size_t slash = rest.find('/');
  if (slash == std::string::npos || slash + 1 >= rest.size()) {
    throw ConnectionError("URL '" + url + "' is missing a database name");
  }
  std::string authority = rest.substr(0, slash);
  config.database = rest.substr(slash + 1);

  const size_t colon = authority.find(':');
  if (colon != std::string::npos) {
    config.port =
        static_cast<int>(ParseInt(authority.substr(colon + 1), "port"));
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) {
    throw ConnectionError("URL '" + url + "' is missing a host");
  }
  config.host = authority;

  bool slow_us_given = false;
  bool slow_trigger_zeroed = false;  // fault_slow_rate=0 / fault_slow_every=0
  if (!query.empty()) {
    std::unordered_set<std::string> seen;
    for (const std::string& pair : strings::Split(query, '&')) {
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        throw ConnectionError("malformed URL parameter '" + pair + "'");
      }
      const std::string key = strings::ToLower(pair.substr(0, eq));
      const std::string value = pair.substr(eq + 1);
      if (!seen.insert(key).second) {
        throw ConnectionError("duplicate URL parameter '" + key + "'");
      }
      if (key == "latency_us") {
        config.latency_us = ParseNonNegative(value, "latency_us");
      } else if (key == "compile_us") {
        config.compile_us = ParseNonNegative(value, "compile_us");
      } else if (key == "row_cost_ns") {
        config.row_cost_ns = ParseNonNegative(value, "row_cost_ns");
      } else if (key == "engine") {
        config.expected_engine = value;
      } else if (key == "connect_timeout_ms") {
        config.connect_timeout_ms = ParseNonNegative(value, key);
      } else if (key == "fault_seed") {
        config.fault.seed = static_cast<uint64_t>(ParseNonNegative(value, key));
        config.has_fault = true;
      } else if (key == "fault_connect_rate") {
        config.fault.connect_failure_rate = ParseRate(value, key);
        config.has_fault = true;
      } else if (key == "fault_connect_every") {
        config.fault.connect_every =
            static_cast<uint64_t>(ParseNonNegative(value, key));
        config.has_fault = true;
      } else if (key == "fault_drop_rate") {
        config.fault.drop_rate = ParseRate(value, key);
        config.has_fault = true;
      } else if (key == "fault_drop_every") {
        config.fault.drop_every =
            static_cast<uint64_t>(ParseNonNegative(value, key));
        config.has_fault = true;
      } else if (key == "fault_transient_rate") {
        config.fault.transient_rate = ParseRate(value, key);
        config.has_fault = true;
      } else if (key == "fault_transient_every") {
        config.fault.transient_every =
            static_cast<uint64_t>(ParseNonNegative(value, key));
        config.has_fault = true;
      } else if (key == "fault_slow_rate") {
        config.fault.slow_rate = ParseRate(value, key);
        if (config.fault.slow_rate == 0) slow_trigger_zeroed = true;
        config.has_fault = true;
      } else if (key == "fault_slow_every") {
        config.fault.slow_every =
            static_cast<uint64_t>(ParseNonNegative(value, key));
        if (config.fault.slow_every == 0) slow_trigger_zeroed = true;
        config.has_fault = true;
      } else if (key == "fault_slow_us") {
        config.fault.slow_us = ParseNonNegative(value, key);
        config.has_fault = true;
        slow_us_given = true;
      } else if (key == "fault_max") {
        config.fault.max_faults = ParseInt(value, key);
        config.has_fault = true;
      } else if (key == "fault_kill_at_round") {
        config.fault.kill_at_round = ParseNonNegative(value, key);
        config.has_fault = true;
      } else if (key == "fault_crash_at_write") {
        // Crash points are 1-based ordinals; "never" is expressed by
        // omitting the parameter, so zero is rejected.
        config.crash.crash_at_write = ParsePositive(value, key);
        config.has_crash = true;
      } else if (key == "fault_crash_at_fsync") {
        config.crash.crash_at_fsync = ParsePositive(value, key);
        config.has_crash = true;
      } else if (key == "fault_crash_at_rename") {
        config.crash.crash_at_rename = ParsePositive(value, key);
        config.has_crash = true;
      } else if (key == "fault_torn_writes") {
        config.crash.torn_writes = ParseNonNegative(value, key) != 0;
        config.has_crash = true;
      } else if (key == "fault_flip_bit") {
        config.crash.flip_bit = ParseNonNegative(value, key) != 0;
        config.has_crash = true;
      } else if (key == "checkpoint_every") {
        config.checkpoint_every = ParseNonNegative(value, key);
      } else if (key == "checkpoint_dir") {
        config.checkpoint_dir = value;
      } else if (key == "checkpoint_keep") {
        // Zero would keep nothing — recovery could never fall back; omit
        // the parameter for the default retention of 2.
        config.checkpoint_keep = ParsePositive(value, key);
      } else if (key == "verify_checkpoints") {
        config.verify_checkpoints = ParseNonNegative(value, key) != 0;
      } else if (key == "scrub_every") {
        config.scrub_every = ParseNonNegative(value, key);
      } else if (key == "memory_limit_bytes") {
        // Zero is meaningless here (nothing runs on a zero-byte budget);
        // omit the parameter for "unlimited".
        config.memory_limit_bytes = ParsePositive(value, key);
      } else if (key == "cancel_check_rows") {
        // Zero is meaningless (a check every zero rows); omit the
        // parameter for the engine default.
        config.cancel_check_rows = ParsePositive(value, key);
      } else if (key == "buffer_pool_bytes") {
        // Zero would evict every page on arrival; omit the parameter for
        // an unbounded pool (pages stay resident, nothing spills).
        config.buffer_pool_bytes = ParsePositive(value, key);
      } else if (key == "paged") {
        config.paged = ParseNonNegative(value, key) != 0 ? 1 : 0;
      } else {
        throw ConnectionError("unknown URL parameter '" + key + "'");
      }
    }
  }

  // Contradictory fault-knob combinations are configuration bugs; reject
  // them instead of silently running with no (or different) faults.
  if (config.has_fault) {
    const FaultConfig& f = config.fault;
    if (f.max_faults == 0 && f.any()) {
      throw ConnectionError(
          "contradictory fault knobs: fault_max=0 disables every configured "
          "fault trigger (drop fault_max or the fault_* triggers)");
    }
    // fault_slow_us alongside an *explicitly zeroed* slow trigger is a
    // contradiction (the delay can never fire). A bare fault_slow_us with
    // no trigger parameters stays legal: callers pre-set the delay and
    // attach the trigger later (e.g. the shell's \faults command).
    if (slow_us_given && slow_trigger_zeroed && f.slow_rate == 0 &&
        f.slow_every == 0) {
      throw ConnectionError(
          "contradictory fault knobs: fault_slow_us is set but the "
          "fault_slow_rate/fault_slow_every triggers are zero, so the "
          "delay can never fire");
    }
  }
  if (config.has_crash) {
    // The crash plan reuses fault_seed for its torn-length/bit-flip draws.
    config.crash.seed = config.fault.seed;
    if (!config.crash.armed()) {
      throw ConnectionError(
          "contradictory fault knobs: fault_torn_writes/fault_flip_bit "
          "modify what a crash leaves behind, but no "
          "fault_crash_at_write/_fsync/_rename crash point is set");
    }
  }
  return config;
}

std::unique_ptr<Connection> DriverManager::GetConnection(
    const std::string& url) {
  const ConnectionConfig config = ConnectionConfig::Parse(url);

  // The durability shim's crash plan is process-wide state: a crash-knob
  // URL arms it, a plain URL disarms it. Re-installing the identical plan
  // (every worker connection of a run; a resume run reopening the same
  // URL) is a no-op that keeps the once-only fired latch, mirroring
  // fault_kill_at_round's latch semantics.
  FaultFile::InstallPlan(config.has_crash ? config.crash : CrashPlan{});

  minidb::Server* server = nullptr;
  {
    const std::scoped_lock lock(HostMutex());
    const auto it = HostMap().find(strings::ToLower(config.host));
    if (it != HostMap().end()) server = it->second;
  }
  if (server == nullptr) {
    throw ConnectionError("no database server registered for host '" +
                          config.host + "'");
  }

  auto db = server->FindDatabase(config.database);
  if (!db) {
    throw ConnectionError("database '" + config.database +
                          "' does not exist on host '" + config.host + "'");
  }
  // Storage knobs configure the database, not the connection: the buffer
  // pool is shared by every connection to this database, and the paged
  // toggle only affects tables created while it is set.
  if (config.paged >= 0) db->set_paged_enabled(config.paged != 0);
  if (config.buffer_pool_bytes > 0) {
    db->set_buffer_pool_bytes(config.buffer_pool_bytes);
  }
  if (!config.expected_engine.empty()) {
    const auto expected =
        minidb::EngineProfile::ByName(config.expected_engine);
    if (expected.name != db->profile().name) {
      throw ConnectionError("database '" + config.database + "' runs " +
                            db->profile().name + ", not the requested " +
                            expected.name);
    }
  }

  // The handshake pays one round trip; a latency that cannot meet the
  // connect deadline fails the open before a connection exists.
  if (config.connect_timeout_ms > 0 &&
      config.latency_us > config.connect_timeout_ms * 1000) {
    throw TimeoutError("connection handshake to '" + config.host +
                       "' exceeded connect_timeout_ms=" +
                       std::to_string(config.connect_timeout_ms));
  }

  // A server-level injector (operator flipped faults on the deployment)
  // takes precedence over URL-configured injection.
  std::shared_ptr<FaultInjector> injector = server->fault_injector();
  if (!injector && config.has_fault) injector = SharedInjectorFor(config);
  if (injector && injector->ShouldFailConnect()) {
    throw ConnectionLostError("injected connection-open failure for host '" +
                              config.host + "'");
  }
  return std::make_unique<Connection>(std::move(db), config.latency_us,
                                      config.row_cost_ns, std::move(injector),
                                      config.compile_us,
                                      config.memory_limit_bytes,
                                      config.cancel_check_rows);
}

void DriverManager::RegisterHost(const std::string& host,
                                 minidb::Server* server) {
  const std::scoped_lock lock(HostMutex());
  const std::string folded = strings::ToLower(host);
  if (server == nullptr) {
    HostMap().erase(folded);
  } else {
    HostMap()[folded] = server;
  }
}

minidb::Server* DriverManager::FindHost(const std::string& host) {
  const std::scoped_lock lock(HostMutex());
  const auto it = HostMap().find(strings::ToLower(host));
  return it == HostMap().end() ? nullptr : it->second;
}

}  // namespace sqloop::dbc
