// Connection / statement API in the JDBC style the paper depends on:
// execute, executeQuery, executeUpdate, addBatch/executeBatch, transaction
// control, and isolation levels.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/memory_tracker.h"
#include "minidb/database.h"
#include "minidb/executor.h"
#include "telemetry/recorder.h"

namespace sqloop::dbc {

using ResultSet = minidb::ResultSet;

enum class IsolationLevel {
  kReadCommitted,  // statement-level isolation (minidb's native behaviour)
  kSerializable,   // accepted and recorded; see DESIGN.md for scope
};

/// Round-trip / statement counters, exposed so tests and benches can verify
/// communication-cost claims (e.g. that batching collapses round trips).
struct ConnectionStats {
  uint64_t round_trips = 0;
  uint64_t statements = 0;            // includes prepared executions
  uint64_t prepared_statements = 0;   // Prepare() calls (handles created)
  uint64_t prepared_executions = 0;   // executes that went through a handle

  void Reset() noexcept { *this = {}; }
};

class PreparedStatement;

/// One client connection to a database. Not thread-safe — use one
/// connection per thread, exactly as SQLoop does (paper §V-B).
class Connection {
 public:
  /// `memory_limit_bytes` caps this connection's transient working sets
  /// (0 = unlimited); `cancel_check_rows` sets the engine's governor check
  /// interval (<=0 = engine default). Both come from the URL knobs of the
  /// same name.
  Connection(std::shared_ptr<minidb::Database> db, int64_t latency_us,
             int64_t row_cost_ns = 0,
             std::shared_ptr<FaultInjector> fault_injector = nullptr,
             int64_t compile_us = 0, int64_t memory_limit_bytes = 0,
             int64_t cancel_check_rows = 0);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Executes one statement of any kind; pays one round trip.
  ResultSet Execute(std::string_view sql);

  /// Executes a statement expected to produce rows.
  ResultSet ExecuteQuery(std::string_view sql) { return Execute(sql); }

  /// Executes DML; returns the affected-row count.
  size_t ExecuteUpdate(std::string_view sql);

  /// Compiles `sql` (with optional `?` placeholders) into a reusable
  /// handle — JDBC prepareStatement. Pays one round trip now; each
  /// execution afterwards pays exactly one round trip and zero parses.
  /// The handle stays valid across DDL (the plan re-binds transparently)
  /// and across Close/Reopen of this connection.
  PreparedStatement Prepare(std::string sql);

  /// Queues a statement for ExecuteBatch.
  void AddBatch(std::string sql);

  /// Discards queued batch statements without executing them (JDBC's
  /// Statement.clearBatch). A fatal mid-batch error (e.g. IntegrityError)
  /// abandons the queue; a caller reusing the connection must drain it or
  /// the stale statements would run ahead of its own.
  void ClearBatch() noexcept { batch_.clear(); }

  /// Runs all queued statements in order, paying a single round trip
  /// (JDBC's Statement.executeBatch). Returns per-statement affected rows.
  std::vector<size_t> ExecuteBatch();

  size_t batch_size() const noexcept { return batch_.size(); }

  // --- transactions ----------------------------------------------------
  /// With autocommit off, the first subsequent statement opens a
  /// transaction that lasts until Commit/Rollback (JDBC semantics).
  void SetAutoCommit(bool autocommit);
  bool auto_commit() const noexcept { return autocommit_; }
  void Commit();
  void Rollback();

  void SetTransactionIsolation(IsolationLevel level) noexcept {
    isolation_ = level;
  }
  IsolationLevel transaction_isolation() const noexcept { return isolation_; }

  // --- introspection ---------------------------------------------------
  const minidb::EngineProfile& profile() const { return db_->profile(); }
  Dialect dialect() const { return db_->profile().dialect; }
  const std::string& database_name() const { return db_->name(); }
  const ConnectionStats& stats() const noexcept { return stats_; }
  /// Zeroes the lifetime counters, e.g. between benchmark phases.
  void ResetStats() noexcept { stats_.Reset(); }

  /// Attributes this connection's work (round trips, statements, batches,
  /// plus the engine's rows-examined / lock-wait costs) to a telemetry
  /// recorder. Null detaches. The recorder must outlive the attachment;
  /// SqLoop attaches one per run and detaches it when the run ends.
  void set_recorder(telemetry::Recorder* recorder) noexcept;
  telemetry::Recorder* recorder() const noexcept { return recorder_; }

  bool closed() const noexcept { return closed_; }
  void Close();

  /// Re-arms a closed connection against the same database (the JDBC
  /// pattern of replacing a dropped connection, without re-threading the
  /// URL). Pays one handshake round trip; a configured fault injector may
  /// refuse the attempt with ConnectionLostError, leaving the connection
  /// closed. Queued batch statements survive — the whole batch is a single
  /// client-visible submission that never reached the engine, so the
  /// retrier resubmits it after the reopen. No-op on an open connection.
  void Reopen();

  // --- resilience hooks -------------------------------------------------
  /// Shared fault decision source; null disables injection. Shell and
  /// server hooks can attach one mid-session.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector) noexcept {
    fault_ = std::move(injector);
  }
  const std::shared_ptr<FaultInjector>& fault_injector() const noexcept {
    return fault_;
  }

  /// Cooperative cancellation for straggler speculation: once the shared
  /// flag flips to true, the next statement (or batch) this connection
  /// would submit fails with TaskSupersededError *before* it reaches the
  /// engine, and an in-progress injected slow sleep is cut short the same
  /// way. A statement already inside the engine always completes, so a
  /// cancelled task's finished pieces remain exactly-once. Null disables.
  void set_cancel_flag(std::shared_ptr<std::atomic<bool>> flag) noexcept {
    cancel_ = std::move(flag);
  }

  /// Deadline for a single statement (or batch); 0 disables. Enforced at
  /// two points: the injection point (an injected slow statement whose
  /// delay would blow the deadline sleeps only up to the deadline, then
  /// fails with TimeoutError *before* the engine applies it), and — since
  /// the governance work — inside the engine, where the executor's
  /// governor checks the armed deadline every `cancel_check_rows` rows
  /// during read/build phases. Both surfaces throw TimeoutError
  /// (transient): the checks sit before any write applies, so retry is
  /// safe either way.
  void set_statement_timeout_ms(int64_t timeout_ms) noexcept {
    statement_timeout_ms_ = timeout_ms;
  }
  int64_t statement_timeout_ms() const noexcept {
    return statement_timeout_ms_;
  }

  // --- resource governance ----------------------------------------------
  /// Cancellation token observed before each statement AND mid-statement
  /// by the engine's governor (unlike the straggler cancel flag, which is
  /// strictly pre-engine — see set_cancel_flag). Null detaches.
  void set_cancel_token(const CancelToken* token) noexcept {
    token_ = token;
    executor_.set_cancel_token(token);
  }

  /// Redirects this connection's transient-memory charges to `tracker`
  /// (the job server lends each job's scope); null restores the
  /// connection's own scope.
  void set_memory_tracker(MemoryTracker* tracker) noexcept {
    executor_.set_memory_tracker(tracker != nullptr ? tracker : &tracker_);
  }

  /// Rows between the engine governor's cancel/deadline checks; values
  /// < 1 restore the engine default.
  void set_cancel_check_rows(int64_t rows) noexcept {
    executor_.set_cancel_check_rows(rows);
  }

  /// This connection's own memory scope (parented on the database scope,
  /// limited by the `memory_limit_bytes` URL knob).
  MemoryTracker& memory_tracker() noexcept { return tracker_; }

  // Current governance attachments — runners save these before lending a
  // job scope to a borrowed master connection and restore them after.
  const CancelToken* cancel_token() const noexcept { return token_; }
  MemoryTracker* active_memory_tracker() const noexcept {
    return executor_.memory_tracker();
  }
  int64_t cancel_check_rows() const noexcept {
    return executor_.cancel_check_rows();
  }

  /// Direct handle for test fixtures; production code goes through SQL.
  minidb::Database& database() { return *db_; }

 private:
  friend class PreparedStatement;

  void PayRoundTrip();
  void PayServerWork(size_t rows_examined);
  /// Simulated server-side parse+plan cost, paid only when the engine
  /// actually compiled the statement (cache miss or ablation) — prepared
  /// and plan-cached executions skip it, like a server-side PREPARE.
  void PayCompile(size_t statements = 1);
  void EnsureOpen() const;
  void EnsureTransactionIfNeeded();
  /// Consults the injector before a statement/batch touches the engine.
  /// Throws ConnectionLostError (after dropping the connection),
  /// TransientError, or TimeoutError; sleeps for kSlow.
  void MaybeInjectFault();
  /// Marks the connection dropped, as a mid-statement network failure
  /// would: open transaction rolled back server-side, handle unusable.
  void DropNow();
  /// Throws TaskSupersededError iff the cancel flag is set.
  void ThrowIfSuperseded() const;
  /// Throws the token's error iff cancellation was requested (cheap
  /// pre-statement check; the engine governor covers mid-statement).
  void ThrowIfCancelled() const;
  /// Arms the executor's mid-statement deadline from
  /// statement_timeout_ms_; no-op when the timeout is disabled.
  void ArmStatementDeadline();
  /// Sleeps `delay_us` in small slices so a cancel request interrupts an
  /// injected slow statement instead of waiting it out.
  void InterruptibleSleep(int64_t delay_us) const;

  std::shared_ptr<minidb::Database> db_;
  minidb::Executor executor_;
  // The connection's own memory scope: parented on the database tracker
  // (so charges roll up to the server watermark), capped by the
  // memory_limit_bytes URL knob. The executor charges here unless a job
  // scope was lent via set_memory_tracker.
  MemoryTracker tracker_;
  const CancelToken* token_ = nullptr;
  minidb::Session session_;
  std::vector<std::string> batch_;
  int64_t latency_us_;
  int64_t row_cost_ns_;
  int64_t compile_us_;
  std::shared_ptr<FaultInjector> fault_;
  std::shared_ptr<std::atomic<bool>> cancel_;
  int64_t statement_timeout_ms_ = 0;
  bool autocommit_ = true;
  bool in_explicit_txn_ = false;
  bool closed_ = false;
  IsolationLevel isolation_ = IsolationLevel::kReadCommitted;
  ConnectionStats stats_;
  telemetry::Recorder* recorder_ = nullptr;
};

}  // namespace sqloop::dbc
