#include "core/script_gen.h"

#include "common/error.h"
#include "common/stopwatch.h"
#include "core/schema_infer.h"
#include "core/termination.h"
#include "core/translator.h"
#include "minidb/schema.h"
#include "sql/printer.h"

namespace sqloop::core {
namespace {

using minidb::FoldIdentifier;

struct ScriptPieces {
  std::string table;
  std::string tmp;
  std::vector<std::string> setup;
  std::vector<std::string> per_iteration;
  std::string final_query;
  std::vector<std::string> teardown;
};

ScriptPieces BuildPieces(const sql::WithClause& with,
                         const Translator& translator,
                         const std::vector<sql::ColumnDef>& schema) {
  ScriptPieces pieces;
  pieces.table = FoldIdentifier(with.name);
  pieces.tmp = pieces.table + "_tmp";

  pieces.setup = {
      translator.DropTableSql(pieces.table),
      translator.DropTableSql(pieces.tmp),
      translator.CreateTableSql(pieces.table, schema, 0),
      "INSERT INTO " + translator.Quote(pieces.table) + " " +
          translator.Render(*with.seed),
  };

  // The per-iteration block a user would write by hand: materialize Ri,
  // merge it back by key, throw the scratch table away.
  std::string merge = "UPDATE " + translator.Quote(pieces.table) + " SET ";
  for (size_t i = 1; i < schema.size(); ++i) {
    if (i > 1) merge += ", ";
    merge += translator.Quote(schema[i].name) + " = t." +
             translator.Quote(schema[i].name);
  }
  merge += " FROM " + translator.Quote(pieces.tmp) + " AS t WHERE " +
           translator.Quote(pieces.table) + "." +
           translator.Quote(schema[0].name) + " = t." +
           translator.Quote(schema[0].name);

  pieces.per_iteration = {
      translator.CreateTableSql(pieces.tmp, schema, 0),
      "INSERT INTO " + translator.Quote(pieces.tmp) + " " +
          translator.Render(*with.step),
      merge,
      translator.DropTableSql(pieces.tmp),
  };

  pieces.final_query = translator.Render(*with.final_query);
  pieces.teardown = {translator.DropTableSql(pieces.table)};
  return pieces;
}

}  // namespace

std::string GenerateIterativeScript(const sql::WithClause& with,
                                    Dialect dialect, int64_t iterations) {
  // Script generation needs only declared names, not sampled types; the
  // rendering below uses DOUBLE for the value columns exactly as a user
  // targeting these workloads would.
  if (with.columns.empty()) {
    throw AnalysisError("script generation requires a CTE column list");
  }
  std::vector<sql::ColumnDef> schema;
  for (size_t i = 0; i < with.columns.size(); ++i) {
    schema.push_back({FoldIdentifier(with.columns[i]),
                      i == 0 ? ValueType::kInt64 : ValueType::kDouble, ""});
  }
  const Translator translator(dialect);
  const ScriptPieces pieces = BuildPieces(with, translator, schema);

  std::string script;
  script += "-- SQL script equivalent of iterative CTE '" + with.name +
            "' (generated; " + std::string(DialectName(dialect)) +
            " dialect)\n";
  for (const auto& sql : pieces.setup) script += sql + ";\n";
  for (int64_t i = 1; i <= iterations; ++i) {
    script += "-- iteration " + std::to_string(i) + "\n";
    for (const auto& sql : pieces.per_iteration) script += sql + ";\n";
  }
  script += "-- final result\n" + pieces.final_query + ";\n";
  for (const auto& sql : pieces.teardown) script += sql + ";\n";
  return script;
}

dbc::ResultSet RunScriptBaseline(dbc::Connection& connection,
                                 const sql::WithClause& with,
                                 const SqloopOptions& options,
                                 RunStats& stats) {
  const Stopwatch watch;
  const Translator translator = Translator::For(connection);
  const auto schema = InferSchemaFromSelect(connection, translator,
                                            *with.seed, with.columns,
                                            /*widen_non_key=*/true);
  const ScriptPieces pieces = BuildPieces(with, translator, schema);
  const TerminationChecker checker(with.termination, translator,
                                   pieces.table);

  for (const auto& sql : pieces.setup) connection.Execute(sql);

  for (int64_t iteration = 1;; ++iteration) {
    if (checker.needs_delta_snapshot()) {
      for (const auto& sql : checker.SnapshotSql(schema)) {
        connection.Execute(sql);
      }
    }
    uint64_t updates = 0;
    for (size_t s = 0; s < pieces.per_iteration.size(); ++s) {
      const size_t affected =
          connection.ExecuteUpdate(pieces.per_iteration[s]);
      if (s == 2) updates = affected;  // the merge statement
    }
    stats.iterations = iteration;
    stats.total_updates += updates;
    if (checker.Satisfied(connection, iteration, updates)) break;
    if (iteration >= options.max_iterations_guard) {
      throw ExecutionError("script baseline for '" + with.name +
                           "' did not reach its stop condition");
    }
  }

  dbc::ResultSet result = connection.ExecuteQuery(pieces.final_query);
  if (!options.keep_result_tables) {
    for (const auto& sql : pieces.teardown) connection.Execute(sql);
    connection.Execute(translator.DropTableSql(checker.delta_table()));
  }
  stats.mode_used = ExecutionMode::kSingleThread;
  stats.fallback_reason = "hand-written SQL script baseline";
  stats.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace sqloop::core
