#include "core/single_thread.h"

#include "common/error.h"
#include "common/stopwatch.h"
#include "core/schema_infer.h"
#include "core/termination.h"
#include "core/translator.h"
#include "minidb/schema.h"
#include "telemetry/hooks.h"

namespace sqloop::core {
namespace {

using minidb::FoldIdentifier;

/// Builds `UPDATE <target> SET c1 = <alias>.c1, ... FROM <source> AS
/// <alias> WHERE <target>.<key> = <alias>.<key>` — the Rid ∩ Rtmp_id merge
/// of §III-A.
std::string BuildMergeSql(const Translator& translator,
                          const std::string& target,
                          const std::string& source,
                          const std::vector<sql::ColumnDef>& schema) {
  static constexpr const char* kAlias = "sqloop_tmp";
  sql::Statement update;
  update.kind = sql::StatementKind::kUpdate;
  update.table_name = target;
  for (size_t i = 1; i < schema.size(); ++i) {
    update.set_items.emplace_back(schema[i].name,
                                  sql::MakeColumnRef(kAlias, schema[i].name));
  }
  update.update_from = sql::MakeBaseTable(source, kAlias);
  update.where =
      sql::MakeBinary(sql::BinaryOp::kEq,
                      sql::MakeColumnRef(target, schema[0].name),
                      sql::MakeColumnRef(kAlias, schema[0].name));
  return translator.Render(update);
}

/// Records one round of a single-threaded loop: the whole body counts as
/// one Compute-side task, plus a span so traces stay uniform across modes.
void RecordRound(const ExecutionContext& ctx, const Stopwatch& run_watch,
                 int64_t round, uint64_t updates, double body_start,
                 telemetry::SpanKind kind) {
  telemetry::IterationStats it;
  it.round = round;
  it.updates = updates;
  it.compute_tasks = 1;
  it.seconds = run_watch.ElapsedSeconds() - body_start;
  it.compute_seconds = it.seconds;
  if (ctx.recorder != nullptr) ctx.recorder->RecordIteration(it);
  SQLOOP_TELEMETRY({
    if (ctx.recorder != nullptr || ctx.observer != nullptr) {
      telemetry::TaskSpan span;
      span.kind = kind;
      span.round = round;
      span.thread_id = telemetry::Recorder::ThisThreadId();
      span.start_seconds = body_start;
      span.duration_seconds = it.seconds;
      span.updates = updates;
      if (ctx.recorder != nullptr) ctx.recorder->RecordSpan(span);
      if (ctx.observer != nullptr) ctx.observer->OnTaskComplete(span);
    }
  });
  if (ctx.observer != nullptr) ctx.observer->OnRoundEnd(it);
}

}  // namespace

dbc::ResultSet RunIterativeSingleThread(dbc::Connection& connection,
                                        const sql::WithClause& with,
                                        const ExecutionContext& ctx) {
  const SqloopOptions& options = ctx.options;
  RunStats& stats = ctx.stats;
  const Stopwatch watch;
  const Translator translator = Translator::For(connection);
  const std::string table = FoldIdentifier(with.name);
  const std::string tmp = table + "_tmp";

  const auto schema = InferSchemaFromSelect(connection, translator, *with.seed,
                                            with.columns,
                                            /*widen_non_key=*/true);
  if (schema.size() < 2) {
    throw AnalysisError("an iterative CTE needs a key column plus at least "
                        "one value column");
  }
  const TerminationChecker checker(with.termination, translator, table);

  // CREATE TABLE R; INSERT INTO R R0 (paper §IV-B).
  connection.Execute(translator.DropTableSql(table));
  connection.Execute(translator.DropTableSql(tmp));
  connection.Execute(translator.DropTableSql(checker.delta_table()));
  connection.Execute(
      translator.CreateTableSql(table, schema, /*primary_key_index=*/0));
  connection.Execute("INSERT INTO " + translator.Quote(table) + " " +
                     translator.Render(*with.seed));

  const std::string insert_tmp_sql = "INSERT INTO " + translator.Quote(tmp) +
                                     " " + translator.Render(*with.step);
  const std::string merge_sql = BuildMergeSql(translator, table, tmp, schema);
  const std::string create_tmp_sql =
      translator.CreateTableSql(tmp, schema, /*primary_key_index=*/0);
  const std::string drop_tmp_sql = translator.DropTableSql(tmp);

  for (int64_t iteration = 1;; ++iteration) {
    if (ctx.observer != nullptr) ctx.observer->OnRoundStart(iteration);
    const double body_start = watch.ElapsedSeconds();
    if (checker.needs_delta_snapshot()) {
      for (const auto& sql : checker.SnapshotSql(schema)) {
        connection.Execute(sql);
      }
    }
    // Rtmp <- Ri(R); R <- merge(R, Rtmp) on matching keys.
    connection.Execute(create_tmp_sql);
    connection.Execute(insert_tmp_sql);
    const size_t updates = connection.ExecuteUpdate(merge_sql);
    connection.Execute(drop_tmp_sql);

    stats.iterations = iteration;
    stats.total_updates += updates;
    RecordRound(ctx, watch, iteration, updates, body_start,
                telemetry::SpanKind::kMerge);
    if (checker.Satisfied(connection, iteration, updates)) break;
    if (iteration >= options.max_iterations_guard) {
      throw ExecutionError("iterative CTE '" + with.name +
                           "' did not satisfy its UNTIL condition within " +
                           std::to_string(options.max_iterations_guard) +
                           " iterations");
    }
  }

  dbc::ResultSet result =
      connection.ExecuteQuery(translator.Render(*with.final_query));

  if (!options.keep_result_tables) {
    connection.Execute(translator.DropTableSql(table));
    connection.Execute(translator.DropTableSql(checker.delta_table()));
  }
  stats.mode_used = ExecutionMode::kSingleThread;
  stats.seconds = watch.ElapsedSeconds();
  return result;
}

dbc::ResultSet RunRecursiveEmulated(dbc::Connection& connection,
                                    const sql::WithClause& with,
                                    const ExecutionContext& ctx) {
  const SqloopOptions& options = ctx.options;
  RunStats& stats = ctx.stats;
  const Stopwatch watch;
  const Translator translator = Translator::For(connection);
  const std::string table = FoldIdentifier(with.name);
  const std::string work_a = table + "_wa";
  const std::string work_b = table + "_wb";

  // Recursive CTEs append, never mutate — keep sampled types, allow
  // duplicate rows (no primary key).
  const auto schema = InferSchemaFromSelect(connection, translator, *with.seed,
                                            with.columns,
                                            /*widen_non_key=*/false);
  for (const auto& name : {table, work_a, work_b}) {
    connection.Execute(translator.DropTableSql(name));
  }
  connection.Execute(translator.CreateTableSql(table, schema, -1));
  connection.Execute(translator.CreateTableSql(work_a, schema, -1));
  const std::string seed_sql = translator.Render(*with.seed);
  connection.Execute("INSERT INTO " + translator.Quote(table) + " " +
                     seed_sql);
  connection.Execute("INSERT INTO " + translator.Quote(work_a) + " " +
                     seed_sql);

  // Semi-naive loop: the step only ever sees the previous delta.
  std::string current = work_a;
  std::string next = work_b;
  for (int64_t round = 1;; ++round) {
    if (round > options.max_iterations_guard) {
      throw ExecutionError("recursive CTE '" + with.name +
                           "' exceeded the recursion guard");
    }
    if (ctx.observer != nullptr) ctx.observer->OnRoundStart(round);
    const double body_start = watch.ElapsedSeconds();
    auto step = with.step->Clone();
    RenameBaseTables(*step, {{table, current}});
    connection.Execute(translator.CreateTableSql(next, schema, -1));
    const size_t produced =
        connection.ExecuteUpdate("INSERT INTO " + translator.Quote(next) +
                                 " " + translator.Render(*step));
    stats.iterations = round;
    stats.total_updates += produced;
    if (produced == 0) {
      connection.Execute(translator.DropTableSql(next));
      RecordRound(ctx, watch, round, 0, body_start,
                  telemetry::SpanKind::kMerge);
      break;
    }
    connection.Execute("INSERT INTO " + translator.Quote(table) +
                       " SELECT * FROM " + translator.Quote(next));
    connection.Execute(translator.DropTableSql(current));
    std::swap(current, next);
    RecordRound(ctx, watch, round, produced, body_start,
                telemetry::SpanKind::kMerge);
  }

  dbc::ResultSet result =
      connection.ExecuteQuery(translator.Render(*with.final_query));
  if (!options.keep_result_tables) {
    connection.Execute(translator.DropTableSql(table));
    connection.Execute(translator.DropTableSql(current));
  }
  stats.mode_used = ExecutionMode::kSingleThread;
  stats.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace sqloop::core
