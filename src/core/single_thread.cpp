#include "core/single_thread.h"

#include "common/error.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "core/resilience.h"
#include "core/schema_infer.h"
#include "core/termination.h"
#include "core/translator.h"
#include "dbc/prepared_statement.h"
#include "minidb/schema.h"
#include "sql/value.h"
#include "telemetry/hooks.h"

namespace sqloop::core {
namespace {

using minidb::FoldIdentifier;

/// Statement-level resilience for the single-threaded loops: every
/// statement is one retry unit. Faults are injected before the engine
/// applies a statement (see DESIGN.md "Failure model & resilience"), so
/// re-running a failed statement never double-applies work, and the loop's
/// own progress (which statement comes next) is naturally preserved.
/// Also scopes the policy's statement timeout to the run.
class ResilientConn {
 public:
  ResilientConn(dbc::Connection& conn, const ExecutionContext& ctx)
      : conn_(conn),
        retrier_(ctx.options.retry, ctx.recorder, ctx.observer),
        stats_(ctx.stats),
        saved_timeout_ms_(conn.statement_timeout_ms()),
        saved_token_(conn.cancel_token()),
        saved_tracker_(conn.active_memory_tracker()),
        saved_check_rows_(conn.cancel_check_rows()) {
    conn_.set_statement_timeout_ms(ctx.options.retry.statement_timeout_ms);
    // Scope the run's governance hooks (cancel token, job memory budget,
    // governor interval) to the lent master for the run's duration.
    retrier_.set_cancel_token(ctx.cancel);
    retrier_.set_memory_tracker(ctx.memory);
    retrier_.set_cancel_check_rows(ctx.options.cancel_check_rows);
    retrier_.ApplyGovernance(conn_);
  }
  ~ResilientConn() {
    conn_.set_statement_timeout_ms(saved_timeout_ms_);
    conn_.set_cancel_token(saved_token_);
    conn_.set_memory_tracker(saved_tracker_);
    conn_.set_cancel_check_rows(saved_check_rows_);
    // Flush on every exit path: partial counters still tell the story
    // when the run aborts.
    // += so counts from a setup-phase Retrier (sqloop.cpp) survive when
    // the parallel path falls back here mid-setup.
    stats_.retries += retrier_.retries();
    stats_.reopened_connections += retrier_.reopened_connections();
    stats_.timeouts += retrier_.timeouts();
  }

  void Execute(const std::string& sql) {
    retrier_.Run(conn_, "statement", -1, [&] {
      conn_.Execute(sql);
      return 0;
    });
  }
  size_t ExecuteUpdate(const std::string& sql) {
    return retrier_.Run(conn_, "statement", -1,
                        [&] { return conn_.ExecuteUpdate(sql); });
  }
  dbc::ResultSet ExecuteQuery(const std::string& sql) {
    return retrier_.Run(conn_, "query", -1,
                        [&] { return conn_.ExecuteQuery(sql); });
  }

  // --- prepared path ---------------------------------------------------
  // A handle's compiled state lives with the database, so it survives the
  // Reopen a retry performs; re-running a failed execute is the same safe
  // retry unit as a raw statement.
  dbc::PreparedStatement Prepare(std::string sql) {
    return retrier_.Run(conn_, "prepare", -1,
                        [&] { return conn_.Prepare(sql); });
  }
  void Execute(dbc::PreparedStatement& stmt) {
    retrier_.Run(conn_, "statement", -1, [&] {
      stmt.Execute();
      return 0;
    });
  }
  size_t ExecuteUpdate(dbc::PreparedStatement& stmt) {
    return retrier_.Run(conn_, "statement", -1,
                        [&] { return stmt.ExecuteUpdate(); });
  }

  Retrier& retrier() { return retrier_; }

 private:
  dbc::Connection& conn_;
  Retrier retrier_;
  RunStats& stats_;
  int64_t saved_timeout_ms_;
  const CancelToken* saved_token_;
  MemoryTracker* saved_tracker_;
  int64_t saved_check_rows_;
};

/// Builds `UPDATE <target> SET c1 = <alias>.c1, ... FROM <source> AS
/// <alias> WHERE <target>.<key> = <alias>.<key>` — the Rid ∩ Rtmp_id merge
/// of §III-A.
std::string BuildMergeSql(const Translator& translator,
                          const std::string& target,
                          const std::string& source,
                          const std::vector<sql::ColumnDef>& schema) {
  static constexpr const char* kAlias = "sqloop_tmp";
  sql::Statement update;
  update.kind = sql::StatementKind::kUpdate;
  update.table_name = target;
  for (size_t i = 1; i < schema.size(); ++i) {
    update.set_items.emplace_back(schema[i].name,
                                  sql::MakeColumnRef(kAlias, schema[i].name));
  }
  update.update_from = sql::MakeBaseTable(source, kAlias);
  update.where =
      sql::MakeBinary(sql::BinaryOp::kEq,
                      sql::MakeColumnRef(target, schema[0].name),
                      sql::MakeColumnRef(kAlias, schema[0].name));
  return translator.Render(update);
}

/// Records one round of a single-threaded loop: the whole body counts as
/// one Compute-side task, plus a span so traces stay uniform across modes.
void RecordRound(const ExecutionContext& ctx, const Stopwatch& run_watch,
                 int64_t round, uint64_t updates, double body_start,
                 telemetry::SpanKind kind) {
  telemetry::IterationStats it;
  it.round = round;
  it.updates = updates;
  it.compute_tasks = 1;
  it.seconds = run_watch.ElapsedSeconds() - body_start;
  it.compute_seconds = it.seconds;
  if (ctx.recorder != nullptr) ctx.recorder->RecordIteration(it);
  SQLOOP_TELEMETRY({
    if (ctx.recorder != nullptr || ctx.observer != nullptr) {
      telemetry::TaskSpan span;
      span.kind = kind;
      span.round = round;
      span.thread_id = telemetry::Recorder::ThisThreadId();
      span.start_seconds = body_start;
      span.duration_seconds = it.seconds;
      span.updates = updates;
      if (ctx.recorder != nullptr) ctx.recorder->RecordSpan(span);
      if (ctx.observer != nullptr) ctx.observer->OnTaskComplete(span);
    }
  });
  if (ctx.observer != nullptr) ctx.observer->OnRoundEnd(it);
}

/// Emits one kCheckpoint / kRestore span so traces attribute durability
/// cost the same way they attribute Compute/Gather work.
void RecordDurabilitySpan(const ExecutionContext& ctx,
                          telemetry::SpanKind kind, int64_t round,
                          double start_seconds, double duration_seconds) {
  SQLOOP_TELEMETRY({
    if (ctx.recorder != nullptr || ctx.observer != nullptr) {
      telemetry::TaskSpan span;
      span.kind = kind;
      span.round = round;
      span.thread_id = telemetry::Recorder::ThisThreadId();
      span.start_seconds = start_seconds;
      span.duration_seconds = duration_seconds;
      if (ctx.recorder != nullptr) ctx.recorder->RecordSpan(span);
      if (ctx.observer != nullptr) ctx.observer->OnTaskComplete(span);
    }
  });
}

/// One round's slot in the cross-job scheduler (service runs); see
/// RoundGate. A null gate makes both calls no-ops, so standalone runs pay
/// nothing.
struct RoundLease {
  RoundGate* gate;
  int64_t round;
  RoundLease(RoundGate* g, int64_t r) : gate(g), round(r) {
    if (gate != nullptr) gate->BeginRound(round);
  }
  ~RoundLease() {
    if (gate != nullptr) gate->EndRound(round);
  }
};

}  // namespace

dbc::ResultSet RunIterativeSingleThread(dbc::Connection& connection,
                                        const sql::WithClause& with,
                                        const ExecutionContext& ctx) {
  const SqloopOptions& options = ctx.options;
  RunStats& stats = ctx.stats;
  const Stopwatch watch;
  const Translator translator = Translator::For(connection);
  const std::string table = FoldIdentifier(with.name);
  const std::string tmp = table + "_tmp";
  ResilientConn rc(connection, ctx);

  // Schema inference only issues read-only probes, so the whole call is a
  // safe retry unit.
  const auto schema = rc.retrier().Run(connection, "setup", -1, [&] {
    return InferSchemaFromSelect(connection, translator, *with.seed,
                                 with.columns,
                                 /*widen_non_key=*/true);
  });
  if (schema.size() < 2) {
    throw AnalysisError("an iterative CTE needs a key column plus at least "
                        "one value column");
  }
  const TerminationChecker checker(with.termination, translator, table);

  // --- checkpointing / recovery ----------------------------------------
  // Identity ties checkpoints to the exact job (query text + mode): a
  // resumed run replays the same statements, so only state from the very
  // same job makes the restored table meaningful.
  const bool want_checkpoints = options.checkpoint_every > 0;
  std::unique_ptr<CheckpointManager> ckpt;
  std::optional<CheckpointManifest> resume_from;
  if (want_checkpoints || options.resume) {
    const std::string job_id = CheckpointManager::JobId(
        table + '|' + translator.Render(*with.seed) + '|' +
        translator.Render(*with.step) + '|' +
        translator.Render(*with.final_query) + '|' +
        ExecutionModeName(ExecutionMode::kSingleThread) + "|0");
    if (options.resume) {
      resume_from =
          RecoveryManager(options.checkpoint_dir, job_id).FindLatestValid();
      if (resume_from != std::nullopt &&
          resume_from->mode !=
              ExecutionModeName(ExecutionMode::kSingleThread)) {
        resume_from.reset();
      }
    }
    if (want_checkpoints) {
      ckpt = std::make_unique<CheckpointManager>(options.checkpoint_dir,
                                                 job_id,
                                                 options.checkpoint_keep,
                                                 options.verify_checkpoints);
    }
  }

  // CREATE TABLE R; INSERT INTO R R0 (paper §IV-B) — or, when resuming,
  // R restored from the newest valid checkpoint.
  rc.Execute(translator.DropTableSql(table));
  rc.Execute(translator.DropTableSql(tmp));
  rc.Execute(translator.DropTableSql(checker.delta_table()));
  int64_t start_iteration = 1;
  if (resume_from != std::nullopt) {
    // The dump stores doubles as raw bit patterns and the restore reinserts
    // rows in dump order, so the resumed table is indistinguishable from
    // the one the killed run held after this round.
    const double restore_start = watch.ElapsedSeconds();
    rc.Execute("RESTORE TABLE " + translator.Quote(table) + " FROM " +
               Value(resume_from->table_file).ToSqlLiteral());
    start_iteration = resume_from->round + 1;
    stats.resumed_from_round = resume_from->round;
    SQLOOP_COUNT(ctx.recorder, "checkpoint.restores", 1);
    RecordDurabilitySpan(ctx, telemetry::SpanKind::kRestore,
                         resume_from->round, restore_start,
                         watch.ElapsedSeconds() - restore_start);
  } else {
    rc.Execute(
        translator.CreateTableSql(table, schema, /*primary_key_index=*/0));
    rc.Execute("INSERT INTO " + translator.Quote(table) + " " +
               translator.Render(*with.seed));
  }

  // Every statement the loop repeats is prepared exactly once here; the
  // iterations below only execute the handles. The per-round tmp-table DDL
  // re-binds each plan's lock set (cheap), but nothing is re-parsed.
  auto create_tmp_stmt = rc.Prepare(
      translator.CreateTableSql(tmp, schema, /*primary_key_index=*/0));
  auto insert_tmp_stmt = rc.Prepare("INSERT INTO " + translator.Quote(tmp) +
                                    " " + translator.Render(*with.step));
  auto merge_stmt = rc.Prepare(BuildMergeSql(translator, table, tmp, schema));
  auto drop_tmp_stmt = rc.Prepare(translator.DropTableSql(tmp));
  std::vector<dbc::PreparedStatement> snapshot_stmts;
  if (checker.needs_delta_snapshot()) {
    for (const auto& sql : checker.SnapshotSql(schema)) {
      snapshot_stmts.push_back(rc.Prepare(sql));
    }
  }

  for (int64_t iteration = start_iteration;; ++iteration) {
    const RoundLease lease(ctx.gate, iteration);
    if (ctx.observer != nullptr) ctx.observer->OnRoundStart(iteration);
    if (const auto& fault = connection.fault_injector();
        fault != nullptr && fault->ShouldKillAtRound(iteration)) {
      // Simulated hard crash: in-database leftovers are dropped by the
      // next run's setup; checkpoint files survive for a `resume` run.
      throw JobKilledError("fault_kill_at_round fired at round " +
                           std::to_string(iteration));
    }
    const double body_start = watch.ElapsedSeconds();
    for (auto& stmt : snapshot_stmts) rc.Execute(stmt);
    // Rtmp <- Ri(R); R <- merge(R, Rtmp) on matching keys.
    rc.Execute(create_tmp_stmt);
    rc.Execute(insert_tmp_stmt);
    const size_t updates = rc.ExecuteUpdate(merge_stmt);
    rc.Execute(drop_tmp_stmt);

    stats.iterations = iteration;
    stats.total_updates += updates;
    RecordRound(ctx, watch, iteration, updates, body_start,
                telemetry::SpanKind::kMerge);
    const bool satisfied = rc.retrier().Run(connection, "termination", -1, [&] {
      return checker.Satisfied(connection, iteration, updates);
    });
    if (satisfied) break;
    if (options.scrub_every > 0 && iteration % options.scrub_every == 0) {
      // Scrub BEFORE the checkpoint: corrupt state must never be sealed
      // into a checkpoint it would later be "repaired" from. A mismatch
      // throws IntegrityError; the repair ladder in execute.cpp catches it
      // and restarts from the newest valid (pre-corruption) checkpoint.
      rc.Execute("CHECK TABLE " + translator.Quote(table));
      ++stats.scrub_passes;
      SQLOOP_COUNT(ctx.recorder, "minidb.scrub_passes", 1);
    }
    if (ckpt != nullptr && iteration % options.checkpoint_every == 0) {
      // End-of-round capture: the merge committed and UNTIL said "keep
      // going", so this round's table state is exactly what round N+1
      // starts from.
      const double ckpt_start = watch.ElapsedSeconds();
      ckpt->BeginRound(iteration);
      CheckpointManifest m;
      m.round = iteration;
      m.mode = ExecutionModeName(ExecutionMode::kSingleThread);
      m.table_file = "table.dump";
      // O(1) unchanged-table probe: CHECKSUM TABLE reports the maintained
      // content checksum without scanning. When it matches what the last
      // sealed checkpoint dumped, the sealed bytes are republished instead
      // of re-serializing the whole table.
      const std::string checksum =
          rc.ExecuteQuery("CHECKSUM TABLE " + translator.Quote(table))
              .rows[0][1]
              .as_text();
      if (ckpt->TryReuseDump(iteration, m.table_file, checksum)) {
        ++stats.checkpoint_dumps_reused;
        SQLOOP_COUNT(ctx.recorder, "checkpoint.dumps_reused", 1);
      } else {
        rc.Execute("DUMP TABLE " + translator.Quote(table) + " TO " +
                   Value(ckpt->FileFor(iteration, m.table_file))
                       .ToSqlLiteral());
        ckpt->RecordDumpChecksum(iteration, m.table_file, checksum);
      }
      ckpt->Commit(std::move(m));
      ++stats.checkpoints_written;
      stats.checkpoints_verified = ckpt->verified_count();
      SQLOOP_COUNT(ctx.recorder, "checkpoint.writes", 1);
      RecordDurabilitySpan(ctx, telemetry::SpanKind::kCheckpoint, iteration,
                           ckpt_start, watch.ElapsedSeconds() - ckpt_start);
    }
    if (iteration >= options.max_iterations_guard) {
      throw ExecutionError("iterative CTE '" + with.name +
                           "' did not satisfy its UNTIL condition within " +
                           std::to_string(options.max_iterations_guard) +
                           " iterations");
    }
  }

  dbc::ResultSet result =
      rc.ExecuteQuery(translator.Render(*with.final_query));

  if (!options.keep_result_tables) {
    rc.Execute(translator.DropTableSql(table));
    rc.Execute(translator.DropTableSql(checker.delta_table()));
  }
  stats.mode_used = ExecutionMode::kSingleThread;
  stats.seconds = watch.ElapsedSeconds();
  return result;
}

dbc::ResultSet RunRecursiveEmulated(dbc::Connection& connection,
                                    const sql::WithClause& with,
                                    const ExecutionContext& ctx) {
  const SqloopOptions& options = ctx.options;
  RunStats& stats = ctx.stats;
  const Stopwatch watch;
  const Translator translator = Translator::For(connection);
  const std::string table = FoldIdentifier(with.name);
  const std::string work_a = table + "_wa";
  const std::string work_b = table + "_wb";

  ResilientConn rc(connection, ctx);

  // Recursive CTEs append, never mutate — keep sampled types, allow
  // duplicate rows (no primary key).
  const auto schema = rc.retrier().Run(connection, "setup", -1, [&] {
    return InferSchemaFromSelect(connection, translator, *with.seed,
                                 with.columns,
                                 /*widen_non_key=*/false);
  });
  for (const auto& name : {table, work_a, work_b}) {
    rc.Execute(translator.DropTableSql(name));
  }
  rc.Execute(translator.CreateTableSql(table, schema, -1));
  rc.Execute(translator.CreateTableSql(work_a, schema, -1));
  const std::string seed_sql = translator.Render(*with.seed);
  rc.Execute("INSERT INTO " + translator.Quote(table) + " " + seed_sql);
  rc.Execute("INSERT INTO " + translator.Quote(work_a) + " " + seed_sql);

  // Semi-naive loop: the step only ever sees the previous delta.
  std::string current = work_a;
  std::string next = work_b;
  for (int64_t round = 1;; ++round) {
    if (round > options.max_iterations_guard) {
      throw ExecutionError("recursive CTE '" + with.name +
                           "' exceeded the recursion guard");
    }
    const RoundLease lease(ctx.gate, round);
    if (ctx.observer != nullptr) ctx.observer->OnRoundStart(round);
    const double body_start = watch.ElapsedSeconds();
    auto step = with.step->Clone();
    RenameBaseTables(*step, {{table, current}});
    rc.Execute(translator.CreateTableSql(next, schema, -1));
    const size_t produced =
        rc.ExecuteUpdate("INSERT INTO " + translator.Quote(next) + " " +
                         translator.Render(*step));
    stats.iterations = round;
    stats.total_updates += produced;
    if (produced == 0) {
      rc.Execute(translator.DropTableSql(next));
      RecordRound(ctx, watch, round, 0, body_start,
                  telemetry::SpanKind::kMerge);
      break;
    }
    rc.Execute("INSERT INTO " + translator.Quote(table) + " SELECT * FROM " +
               translator.Quote(next));
    rc.Execute(translator.DropTableSql(current));
    std::swap(current, next);
    RecordRound(ctx, watch, round, produced, body_start,
                telemetry::SpanKind::kMerge);
  }

  dbc::ResultSet result =
      rc.ExecuteQuery(translator.Render(*with.final_query));
  if (!options.keep_result_tables) {
    rc.Execute(translator.DropTableSql(table));
    rc.Execute(translator.DropTableSql(current));
  }
  stats.mode_used = ExecutionMode::kSingleThread;
  stats.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace sqloop::core
