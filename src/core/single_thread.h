// The single-threaded executors (paper §IV-B):
//  * iterative CTEs via the R / Rtmp update loop with Table I termination,
//  * recursive CTEs emulated with client-driven semi-naive evaluation for
//    engines that lack WITH RECURSIVE (MySQL 5.7).
// Both record one telemetry IterationStats entry per round and fire the
// ExecutionContext's observer at round boundaries.
#pragma once

#include "core/observer.h"
#include "core/options.h"
#include "dbc/connection.h"
#include "sql/ast.h"

namespace sqloop::core {

/// Runs an iterative CTE on one connection without partitioning.
dbc::ResultSet RunIterativeSingleThread(dbc::Connection& connection,
                                        const sql::WithClause& with,
                                        const ExecutionContext& ctx);

/// Client-side semi-naive evaluation of a recursive CTE through plain SQL
/// (used when the engine cannot evaluate WITH RECURSIVE itself).
dbc::ResultSet RunRecursiveEmulated(dbc::Connection& connection,
                                    const sql::WithClause& with,
                                    const ExecutionContext& ctx);

}  // namespace sqloop::core
