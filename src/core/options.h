// User-facing knobs and run statistics for the SQLoop middleware.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/recorder.h"

namespace sqloop::core {

/// Parallel execution policy (paper §V-E).
enum class ExecutionMode {
  kSingleThread,    // the §IV-B baseline loop, no partitioning
  kSync,            // two-phase Compute/Gather with a barrier per phase
  kAsync,           // Gather-then-Compute per partition, no barrier
  kAsyncPriority,   // Async with a user-priority scheduling order
};

const char* ExecutionModeName(ExecutionMode mode) noexcept;

/// How the runner reacts to transient faults (connection drops, injected
/// transient errors, statement timeouts). Fatal errors — parse/analysis/
/// execution/config — always abort immediately regardless of this policy.
struct RetryPolicy {
  /// Attempts per statement or task piece, including the first. At the
  /// paper-scale fault rates the resilience suite injects (up to 20% per
  /// statement), 5 attempts push the per-statement exhaustion probability
  /// below ~3e-4. 1 disables retries.
  int max_attempts = 5;

  /// Exponential backoff before attempt k sleeps
  /// min(backoff_max_ms, backoff_base_ms * multiplier^(k-1)), scaled by a
  /// deterministic jitter in [0.5, 1.0] drawn from jitter_seed.
  int64_t backoff_base_ms = 1;
  double backoff_multiplier = 2.0;
  int64_t backoff_max_ms = 100;
  uint64_t jitter_seed = 42;

  /// Per-statement deadline forwarded to every connection the run opens;
  /// 0 disables. A blown deadline surfaces as a (retryable) TimeoutError.
  int64_t statement_timeout_ms = 0;

  /// When a worker exhausts its retry budget: true = degrade gracefully
  /// (retire the worker, re-execute its tasks on the master, ultimately
  /// single-thread the round); false = abort the run with RetryExhausted.
  bool allow_degradation = true;
};

struct SqloopOptions {
  ExecutionMode mode = ExecutionMode::kSync;

  /// Worker threads (each opens its own connection). 0 = the paper's
  /// default of half the available CPUs (§V-B).
  int threads = 0;

  /// Number of hash partitions of the CTE table. The paper defaults to
  /// 256 "to take advantage of the asynchronous techniques".
  int partitions = 256;

  /// AsyncP only: per-partition priority query. `$PARTITION` is replaced
  /// by the partition table name; the query must return one scalar. NULL
  /// means "this partition has no useful work right now".
  std::string priority_query;

  /// AsyncP only: true = larger priority value runs first (PageRank's
  /// sum-of-delta); false = smaller runs first (SSSP's min-distance).
  bool priority_descending = true;

  /// Materialize the constant part of the iterative join per partition
  /// (Rmjoin, paper §V-B). Disable only to measure its effect — the
  /// ablation benchmark does.
  bool materialize_constant_join = true;

  /// Safety net for UNTIL conditions that never trigger.
  int64_t max_iterations_guard = 1000000;

  /// Keep the result view/partitions after the query (benches sample them).
  bool keep_result_tables = false;

  // --- resource governance ----------------------------------------------

  /// Memory budget for this run's transient working sets (materialized
  /// rows, join builds, GROUP BY state, sort buffers) across every
  /// connection the run opens; 0 = unlimited. Also settable per-URL
  /// (`memory_limit_bytes=N`) — a nonzero value here wins. A breach fails
  /// the run with QuotaExceededError at a clean statement boundary;
  /// table storage itself is accounted but never capped by this knob.
  int64_t memory_limit_bytes = 0;

  /// Rows between the engine's mid-statement governor checks (cancel
  /// token, statement deadline, charge flush); 0 = engine default (1024).
  /// Also settable per-URL (`cancel_check_rows=N`) — a nonzero value here
  /// wins.
  int64_t cancel_check_rows = 0;

  /// Resilience policy applied by all execution modes.
  RetryPolicy retry;

  // --- checkpointing & recovery (DESIGN.md "Checkpointing & recovery") --

  /// Write a checkpoint every N completed rounds; 0 disables. Also
  /// settable per-URL (`checkpoint_every=N`) — a nonzero value here wins.
  int64_t checkpoint_every = 0;

  /// Directory checkpoints live under (one subdirectory per job). Empty
  /// means "sqloop_ckpt" in the working directory. URL knob:
  /// `checkpoint_dir=<path>`.
  std::string checkpoint_dir;

  /// Resume from the newest valid checkpoint of this job, if one exists;
  /// otherwise start fresh. A resumed run is bit-identical to an
  /// uninterrupted one.
  bool resume = false;

  /// How many of the newest sealed checkpoints survive pruning; 0 = the
  /// default of 2 (newest + one fallback). URL knob: `checkpoint_keep=N`
  /// (N >= 1). Deeper retention widens the corruption window recovery can
  /// fall back across, at proportional disk cost.
  int64_t checkpoint_keep = 0;

  /// Re-read and fully re-validate every checkpoint from disk right after
  /// it is sealed (manifest CRC, every dump CRC, content hash) — the same
  /// validation recovery would run. URL knob: `verify_checkpoints=1`.
  bool verify_checkpoints = false;

  // --- integrity scrubbing (DESIGN.md "Durability & integrity") ---------

  /// Run a CHECK TABLE scrub pass over the CTE state table(s) every N
  /// completed rounds; 0 disables. The scrub compares each table's
  /// incrementally-maintained content checksum against a recomputation
  /// over the live rows; a mismatch raises IntegrityError. URL knob:
  /// `scrub_every=N`.
  int64_t scrub_every = 0;

  /// When a scrub (or any integrity check) fails mid-job, restart from the
  /// newest valid checkpoint instead of surfacing the error (the repair
  /// ladder; bounded attempts). false = fail loudly on first corruption.
  bool scrub_repair = true;

  // --- straggler mitigation ---------------------------------------------

  /// Speculatively re-execute a task once it has run longer than
  /// straggler_factor × the p95 task latency (parallel modes only).
  /// 0 disables speculation entirely.
  double straggler_factor = 0;

  /// Floor (and cold-start value, before enough latency samples exist) for
  /// the speculation threshold, in milliseconds. Prevents speculating on
  /// microsecond tasks whose p95 is noise.
  int64_t straggler_min_ms = 100;

  /// Worker threads actually opened: the explicit `threads` (or the paper's
  /// half-the-CPUs default), clamped to the partition count — with fewer
  /// partitions than threads the extra workers could never be scheduled and
  /// would only open idle connections.
  int ResolveThreads() const {
    int resolved = threads;
    if (resolved <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      resolved = hw >= 2 ? static_cast<int>(hw / 2) : 1;
    }
    return std::max(1, std::min(resolved, std::max(partitions, 1)));
  }
};

/// What actually happened during the last Execute() — used by tests,
/// benches, and the EXPERIMENTS.md tables.
///
/// The flat totals below are aggregated over the whole run; the per-round
/// breakdown lives in the telemetry recorder the run wrote to, and
/// `per_iteration()` exposes it (one entry per executed round). RunStats is
/// a cheap value type: copying it shares the (immutable-after-run)
/// recorder.
struct RunStats {
  ExecutionMode mode_used = ExecutionMode::kSingleThread;
  bool parallelized = false;
  std::string fallback_reason;  // why the parallel path was not taken
  int64_t iterations = 0;       // rounds executed
  uint64_t total_updates = 0;   // changed rows across all statements
  uint64_t compute_tasks = 0;
  uint64_t gather_tasks = 0;
  uint64_t message_tables = 0;
  uint64_t skipped_tasks = 0;   // AsyncP partitions skipped as unproductive
  double seconds = 0;

  // --- resilience (mirrored into the recorder as resilience.* counters,
  // kept flat here so tests work with telemetry compiled out) ------------
  uint64_t retries = 0;               // transient failures retried
  uint64_t reopened_connections = 0;  // dropped connections re-armed
  uint64_t timeouts = 0;              // statements that blew their deadline
  uint64_t degraded_rounds = 0;       // rounds that needed master takeover
  uint64_t workers_retired = 0;       // workers that exhausted their budget
  uint64_t partitions_rebalanced = 0; // retired workers' tasks rerouted to
                                      // surviving workers (not the master)

  // --- checkpointing & recovery -----------------------------------------
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_dumps_reused = 0;  // unchanged tables whose previous
                                         // sealed dump was republished
                                         // instead of re-serialized
  int64_t resumed_from_round = 0;     // 0 = fresh run; N = resumed after N

  // --- durability & integrity -------------------------------------------
  uint64_t checkpoints_verified = 0;  // post-commit read-back validations
  uint64_t scrub_passes = 0;          // CHECK TABLE sweeps the runner issued
  uint64_t integrity_repairs = 0;     // corruption caught and repaired by
                                      // restarting from a valid checkpoint

  // --- straggler mitigation ---------------------------------------------
  uint64_t speculative_tasks = 0;     // tasks a speculative copy claimed
  uint64_t speculative_wins = 0;      // speculation finished remaining work
  uint64_t speculative_losses = 0;    // nothing left / speculation failed

  /// Telemetry of the run: per-round stats, task spans, and the counters
  /// attributed by dbc/minidb. Null until an iterative/recursive execution
  /// has run.
  std::shared_ptr<telemetry::Recorder> recorder;

  /// One entry per executed round, in order. Empty when no recorder was
  /// attached. Each field sums across rounds to the matching flat total.
  std::vector<telemetry::IterationStats> per_iteration() const {
    return recorder ? recorder->IterationsSnapshot()
                    : std::vector<telemetry::IterationStats>{};
  }
};

}  // namespace sqloop::core
