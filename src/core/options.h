// User-facing knobs and run statistics for the SQLoop middleware.
#pragma once

#include <cstdint>
#include <string>
#include <thread>

namespace sqloop::core {

/// Parallel execution policy (paper §V-E).
enum class ExecutionMode {
  kSingleThread,    // the §IV-B baseline loop, no partitioning
  kSync,            // two-phase Compute/Gather with a barrier per phase
  kAsync,           // Gather-then-Compute per partition, no barrier
  kAsyncPriority,   // Async with a user-priority scheduling order
};

const char* ExecutionModeName(ExecutionMode mode) noexcept;

struct SqloopOptions {
  ExecutionMode mode = ExecutionMode::kSync;

  /// Worker threads (each opens its own connection). 0 = the paper's
  /// default of half the available CPUs (§V-B).
  int threads = 0;

  /// Number of hash partitions of the CTE table. The paper defaults to
  /// 256 "to take advantage of the asynchronous techniques".
  int partitions = 256;

  /// AsyncP only: per-partition priority query. `$PARTITION` is replaced
  /// by the partition table name; the query must return one scalar. NULL
  /// means "this partition has no useful work right now".
  std::string priority_query;

  /// AsyncP only: true = larger priority value runs first (PageRank's
  /// sum-of-delta); false = smaller runs first (SSSP's min-distance).
  bool priority_descending = true;

  /// Materialize the constant part of the iterative join per partition
  /// (Rmjoin, paper §V-B). Disable only to measure its effect — the
  /// ablation benchmark does.
  bool materialize_constant_join = true;

  /// Safety net for UNTIL conditions that never trigger.
  int64_t max_iterations_guard = 1000000;

  /// Keep the result view/partitions after the query (benches sample them).
  bool keep_result_tables = false;

  int ResolveThreads() const {
    if (threads > 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 2 ? static_cast<int>(hw / 2) : 1;
  }
};

/// What actually happened during the last Execute() — used by tests,
/// benches, and the EXPERIMENTS.md tables.
struct RunStats {
  ExecutionMode mode_used = ExecutionMode::kSingleThread;
  bool parallelized = false;
  std::string fallback_reason;  // why the parallel path was not taken
  int64_t iterations = 0;       // rounds executed
  uint64_t total_updates = 0;   // changed rows across all statements
  uint64_t compute_tasks = 0;
  uint64_t gather_tasks = 0;
  uint64_t message_tables = 0;
  uint64_t skipped_tasks = 0;   // AsyncP partitions skipped as unproductive
  double seconds = 0;
};

}  // namespace sqloop::core
