// SQLoop — the public entry point of the middleware (paper Fig. 1/2).
//
// A SqLoop instance connects to one target engine by URL and accepts any
// SQL statement:
//   * regular SQL is translated for the engine's dialect and forwarded;
//   * recursive CTEs run natively when the engine supports them, or via
//     SQLoop's client-side semi-naive emulation when it does not
//     (e.g. the MySQL 5.7 profile);
//   * iterative CTEs (the SQLoop extension, §III) are analyzed and run
//     either on the single-threaded loop (§IV-B) or the partitioned
//     parallel engine (§V) under Sync / Async / AsyncP policies.
//
// Example:
//   sqloop::core::SqLoop loop("minidb://localhost/mydb");
//   sqloop::core::SqloopOptions options;
//   options.mode = sqloop::core::ExecutionMode::kAsync;
//   auto ranks = loop.Execute(R"sql(
//     WITH ITERATIVE PageRank (Node, Rank, Delta) AS (...)
//     SELECT Node, Rank FROM PageRank)sql", options);
//
// Execute() is a thin synchronous wrapper over the service API
// (src/server): iterative work is submitted to an embedded single-job
// JobServer and awaited, so the one-shot path and the multi-tenant
// Session::Submit/JobHandle path run the same code. For concurrent or
// multi-tenant workloads, use server::JobServer directly — or this
// instance's job_server() to inspect the embedded one (the shell's \jobs).
//
// Observability: loop.last_run() exposes flat totals plus a per-round
// trace (`per_iteration()`), and set_observer() delivers round-boundary /
// task-completion callbacks while a query executes (see core/observer.h).
#pragma once

#include <memory>
#include <string>

#include "core/observer.h"
#include "core/options.h"
#include "dbc/connection.h"

namespace sqloop::server {
class JobServer;
}

namespace sqloop::core {

class SqLoop {
 public:
  /// Connects immediately; throws ConnectionError on failure. `options`
  /// become the instance defaults used by the one-argument Execute().
  explicit SqLoop(std::string url, SqloopOptions options = {});
  ~SqLoop();

  /// Executes one statement of SQL (iterative/recursive CTEs included)
  /// under the instance's default options.
  dbc::ResultSet Execute(const std::string& sql);

  /// Executes one statement under per-call options, leaving the instance
  /// defaults untouched. Per-call options keep concurrent and repeated
  /// runs independent of call order.
  dbc::ResultSet Execute(const std::string& sql,
                         const SqloopOptions& options);

  /// Executes a ';'-separated script; returns the last statement's result.
  dbc::ResultSet ExecuteScript(const std::string& script);

  /// Registers an observer for round/task callbacks during iterative and
  /// emulated-recursive executions. Not owned; must outlive the instance
  /// or be cleared with set_observer(nullptr). See core/observer.h for
  /// threading guarantees.
  void set_observer(ExecutionObserver* observer) noexcept {
    observer_ = observer;
  }
  ExecutionObserver* observer() const noexcept { return observer_; }

  /// Statistics of the most recent iterative/recursive execution,
  /// including the per-round telemetry trace (stats.per_iteration()).
  const RunStats& last_run() const noexcept { return stats_; }

  const SqloopOptions& options() const noexcept { return options_; }

  /// The embedded job server driving this instance's iterative
  /// executions (created lazily). Exposes Jobs()/Tenants() for
  /// introspection — the shell's \jobs reads it.
  server::JobServer& job_server();

  /// The master connection (also usable for ad-hoc queries/sampling).
  dbc::Connection& connection() { return *master_; }
  const std::string& url() const noexcept { return url_; }

 private:
  dbc::ResultSet ExecuteStatement(const sql::Statement& stmt,
                                  const SqloopOptions& options);
  /// Iterative/emulated-recursive path: submit to the embedded server,
  /// wait, adopt the job's stats as last_run().
  dbc::ResultSet ExecuteViaServer(const sql::Statement& stmt,
                                  const SqloopOptions& options);

  std::string url_;
  SqloopOptions options_;
  std::unique_ptr<dbc::Connection> master_;
  RunStats stats_;
  ExecutionObserver* observer_ = nullptr;
  std::unique_ptr<server::JobServer> server_;  // lazily created
};

}  // namespace sqloop::core
