// SQLoop — the public entry point of the middleware (paper Fig. 1/2).
//
// A SqLoop instance connects to one target engine by URL and accepts any
// SQL statement:
//   * regular SQL is translated for the engine's dialect and forwarded;
//   * recursive CTEs run natively when the engine supports them, or via
//     SQLoop's client-side semi-naive emulation when it does not
//     (e.g. the MySQL 5.7 profile);
//   * iterative CTEs (the SQLoop extension, §III) are analyzed and run
//     either on the single-threaded loop (§IV-B) or the partitioned
//     parallel engine (§V) under Sync / Async / AsyncP policies.
//
// Example:
//   sqloop::core::SqLoop loop("minidb://localhost/mydb");
//   loop.mutable_options().mode = sqloop::core::ExecutionMode::kAsync;
//   auto ranks = loop.Execute(R"sql(
//     WITH ITERATIVE PageRank (Node, Rank, Delta) AS (...)
//     SELECT Node, Rank FROM PageRank)sql");
#pragma once

#include <memory>
#include <string>

#include "core/options.h"
#include "dbc/connection.h"

namespace sqloop::core {

class SqLoop {
 public:
  /// Connects immediately; throws ConnectionError on failure.
  explicit SqLoop(std::string url, SqloopOptions options = {});

  /// Executes one statement of SQL (iterative/recursive CTEs included).
  dbc::ResultSet Execute(const std::string& sql);

  /// Executes a ';'-separated script; returns the last statement's result.
  dbc::ResultSet ExecuteScript(const std::string& script);

  /// Statistics of the most recent iterative/recursive execution.
  const RunStats& last_run() const noexcept { return stats_; }

  const SqloopOptions& options() const noexcept { return options_; }
  SqloopOptions& mutable_options() noexcept { return options_; }

  /// The master connection (also usable for ad-hoc queries/sampling).
  dbc::Connection& connection() { return *master_; }
  const std::string& url() const noexcept { return url_; }

 private:
  dbc::ResultSet ExecuteStatement(const sql::Statement& stmt);
  dbc::ResultSet ExecuteIterative(const sql::WithClause& with);

  std::string url_;
  SqloopOptions options_;
  std::unique_ptr<dbc::Connection> master_;
  RunStats stats_;
};

}  // namespace sqloop::core
