#include "core/analysis.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "minidb/evaluator.h"
#include "minidb/schema.h"

namespace sqloop::core {
namespace {

using minidb::FoldIdentifier;

/// Flattened view of a left-deep FROM clause: base tables in order plus
/// every ON conjunct.
struct FlatFrom {
  struct BaseRef {
    std::string table;  // folded
    std::string alias;  // folded
  };
  std::vector<BaseRef> bases;
  std::vector<const sql::Expr*> on_conjuncts;
  bool only_base_tables = true;
};

void Flatten(const sql::TableRef& ref, FlatFrom& out) {
  switch (ref.kind) {
    case sql::TableRefKind::kBase:
      out.bases.push_back({FoldIdentifier(ref.table_name),
                           FoldIdentifier(ref.alias)});
      return;
    case sql::TableRefKind::kJoin:
      Flatten(*ref.left, out);
      Flatten(*ref.right, out);
      if (ref.on_condition) {
        std::vector<const sql::Expr*> stack = {ref.on_condition.get()};
        while (!stack.empty()) {
          const sql::Expr* e = stack.back();
          stack.pop_back();
          if (e->kind == sql::ExprKind::kBinary &&
              e->binary_op == sql::BinaryOp::kAnd) {
            stack.push_back(e->left.get());
            stack.push_back(e->right.get());
          } else {
            out.on_conjuncts.push_back(e);
          }
        }
      }
      return;
    case sql::TableRefKind::kSubquery:
      out.only_base_tables = false;
      return;
  }
}

/// Every column reference in `expr` must be qualified with an alias from
/// `allowed` (or be unqualified and resolvable to `unqualified_ok` names).
bool RefsConfinedTo(const sql::Expr& expr, const std::set<std::string>& allowed,
                    const std::set<std::string>& unqualified_ok) {
  bool ok = true;
  sql::VisitExpr(expr, [&](const sql::Expr& node) {
    if (node.kind != sql::ExprKind::kColumnRef || !ok) return;
    if (node.qualifier.empty()) {
      if (!unqualified_ok.contains(FoldIdentifier(node.column))) ok = false;
    } else if (!allowed.contains(FoldIdentifier(node.qualifier))) {
      ok = false;
    }
  });
  return ok;
}

void CollectQualifiedColumns(const sql::Expr& expr, const std::string& alias,
                             std::set<std::string>& out) {
  sql::VisitExpr(expr, [&](const sql::Expr& node) {
    if (node.kind == sql::ExprKind::kColumnRef &&
        FoldIdentifier(node.qualifier) == alias) {
      out.insert(FoldIdentifier(node.column));
    }
  });
}

CteAnalysis Fallback(CteAnalysis analysis, std::string reason) {
  analysis.parallelizable = false;
  analysis.reason = std::move(reason);
  return analysis;
}

}  // namespace

CteAnalysis AnalyzeIterativeCte(const sql::WithClause& with) {
  if (with.kind != sql::CteKind::kIterative) {
    throw AnalysisError("AnalyzeIterativeCte expects an iterative CTE");
  }
  if (!with.step) throw AnalysisError("iterative CTE has no ITERATE member");

  CteAnalysis analysis;
  analysis.cte_name = FoldIdentifier(with.name);
  for (const auto& column : with.columns) {
    analysis.columns.push_back(FoldIdentifier(column));
  }
  if (analysis.columns.empty()) {
    return Fallback(std::move(analysis),
                    "the CTE must declare an explicit column list");
  }
  analysis.key_column = analysis.columns[0];

  const sql::SelectStmt& step = *with.step;
  if (step.cores.size() != 1) {
    return Fallback(std::move(analysis),
                    "the iterative member must be a single SELECT");
  }
  const sql::SelectCore& core = step.cores[0];
  analysis.where = core.where.get();

  // --- aggregate detection (paper's SUM/MIN/MAX/COUNT/AVG whitelist) ----
  std::vector<const sql::Expr*> aggregates;
  for (const auto& item : core.items) {
    minidb::CollectAggregates(*item.expr, aggregates);
  }
  if (aggregates.empty()) {
    return Fallback(std::move(analysis),
                    "the iterative member uses no supported aggregate "
                    "function (SUM, MIN, MAX, COUNT, AVG)");
  }
  analysis.has_aggregate = true;

  // --- FROM-clause shape -------------------------------------------------
  if (!core.from) {
    return Fallback(std::move(analysis),
                    "the iterative member has no FROM clause");
  }
  FlatFrom flat;
  Flatten(*core.from, flat);
  if (!flat.only_base_tables) {
    return Fallback(std::move(analysis),
                    "subqueries in the iterative member's FROM clause are "
                    "not parallelized");
  }

  std::vector<size_t> cte_refs;
  std::vector<size_t> other_refs;
  for (size_t i = 0; i < flat.bases.size(); ++i) {
    if (flat.bases[i].table == analysis.cte_name) {
      cte_refs.push_back(i);
    } else {
      other_refs.push_back(i);
    }
  }
  if (cte_refs.empty()) {
    return Fallback(std::move(analysis),
                    "the iterative member never reads the CTE table");
  }
  if (cte_refs.size() != 2) {
    return Fallback(std::move(analysis),
                    "parallelization requires exactly one self-join of the "
                    "CTE table (found " + std::to_string(cte_refs.size()) +
                        " references)");
  }
  if (other_refs.size() != 1) {
    return Fallback(std::move(analysis),
                    "parallelization requires exactly one bridging relation "
                    "between the CTE references");
  }
  analysis.primary_alias = flat.bases[cte_refs[0]].alias;
  analysis.self_alias = flat.bases[cte_refs[1]].alias;
  analysis.mid_table = flat.bases[other_refs[0]].table;
  analysis.mid_alias = flat.bases[other_refs[0]].alias;

  // --- join keys ----------------------------------------------------------
  // Expect R.key = M.<to> and Self.key = M.<from> among the ON conjuncts.
  for (const sql::Expr* conjunct : flat.on_conjuncts) {
    if (conjunct->kind != sql::ExprKind::kBinary ||
        conjunct->binary_op != sql::BinaryOp::kEq ||
        conjunct->left->kind != sql::ExprKind::kColumnRef ||
        conjunct->right->kind != sql::ExprKind::kColumnRef) {
      continue;
    }
    const auto classify = [&](const sql::Expr& a, const sql::Expr& b) {
      const std::string aq = FoldIdentifier(a.qualifier);
      const std::string ac = FoldIdentifier(a.column);
      const std::string bq = FoldIdentifier(b.qualifier);
      const std::string bc = FoldIdentifier(b.column);
      if (bq != analysis.mid_alias) return;
      if (aq == analysis.primary_alias && ac == analysis.key_column) {
        analysis.mid_to_key = bc;
      } else if (aq == analysis.self_alias && ac == analysis.key_column) {
        analysis.mid_from_key = bc;
      }
    };
    classify(*conjunct->left, *conjunct->right);
    classify(*conjunct->right, *conjunct->left);
  }
  if (analysis.mid_to_key.empty() || analysis.mid_from_key.empty()) {
    return Fallback(std::move(analysis),
                    "could not identify R.key = mid.<to> and "
                    "Self.key = mid.<from> join conditions");
  }

  // --- GROUP BY must be exactly R.key -------------------------------------
  if (core.group_by.size() != 1 ||
      core.group_by[0]->kind != sql::ExprKind::kColumnRef ||
      FoldIdentifier(core.group_by[0]->column) != analysis.key_column) {
    return Fallback(std::move(analysis),
                    "the iterative member must GROUP BY the key column");
  }

  // --- classify output columns -------------------------------------------
  if (core.items.size() != analysis.columns.size()) {
    return Fallback(std::move(analysis),
                    "the iterative member's SELECT list width differs from "
                    "the declared CTE columns");
  }
  const sql::Expr& first = *core.items[0].expr;
  if (first.kind != sql::ExprKind::kColumnRef ||
      FoldIdentifier(first.column) != analysis.key_column) {
    return Fallback(std::move(analysis),
                    "the first output column must echo the key (Rid)");
  }

  const std::set<std::string> own_aliases = {analysis.primary_alias};
  const std::set<std::string> exchange_aliases = {analysis.self_alias,
                                                  analysis.mid_alias};
  const std::set<std::string> cte_columns(analysis.columns.begin(),
                                          analysis.columns.end());

  for (size_t i = 1; i < core.items.size(); ++i) {
    const sql::Expr& expr = *core.items[i].expr;
    if (minidb::ContainsAggregate(expr)) {
      if (analysis.delta_column_index >= 0) {
        return Fallback(std::move(analysis),
                        "more than one aggregated (Ridelta) output column");
      }
      if (!RefsConfinedTo(expr, exchange_aliases, {})) {
        return Fallback(std::move(analysis),
                        "the aggregated column may only read the self-join "
                        "and bridging relations");
      }
      analysis.delta_column_index = static_cast<int>(i);
      analysis.delta_column = analysis.columns[i];
      analysis.delta_expr = &expr;
      // Which aggregate drives the exchange (paper §V-D).
      std::vector<const sql::Expr*> in_item;
      minidb::CollectAggregates(expr, in_item);
      if (in_item.size() != 1) {
        return Fallback(std::move(analysis),
                        "the aggregated column must contain exactly one "
                        "aggregate call");
      }
      analysis.aggregate = in_item[0]->agg_func;
      if (in_item[0]->agg_distinct) {
        return Fallback(std::move(analysis),
                        "DISTINCT aggregates are not distributive and "
                        "cannot be parallelized");
      }
    } else {
      if (!RefsConfinedTo(expr, own_aliases, cte_columns)) {
        return Fallback(std::move(analysis),
                        "non-aggregated column " + analysis.columns[i] +
                            " reads other relations; partitions could not "
                            "compute it locally");
      }
      analysis.own_columns.push_back(
          {static_cast<int>(i), analysis.columns[i], &expr});
    }
  }
  if (analysis.delta_column_index < 0) {
    return Fallback(std::move(analysis),
                    "no aggregated (Ridelta) output column found");
  }

  // --- WHERE may only constrain the exchange side --------------------------
  if (analysis.where != nullptr &&
      !RefsConfinedTo(*analysis.where, exchange_aliases, {})) {
    return Fallback(std::move(analysis),
                    "the WHERE clause reads the primary CTE reference; "
                    "messages could not be produced per partition");
  }

  // --- mid columns the message query must materialize (Rmjoin, §V-B) ------
  std::set<std::string> mid_columns = {analysis.mid_to_key,
                                       analysis.mid_from_key};
  CollectQualifiedColumns(*analysis.delta_expr, analysis.mid_alias,
                          mid_columns);
  if (analysis.where != nullptr) {
    CollectQualifiedColumns(*analysis.where, analysis.mid_alias, mid_columns);
  }
  analysis.mid_columns_used.assign(mid_columns.begin(), mid_columns.end());

  analysis.parallelizable = true;
  return analysis;
}

}  // namespace sqloop::core
