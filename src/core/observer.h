// The observer half of the execution API: callers register an
// ExecutionObserver on a SqLoop instance and receive round-boundary and
// task-completion callbacks during iterative/recursive executions, instead
// of polling the database or diffing RunStats after the fact.
#pragma once

#include <string>

#include "common/cancel.h"
#include "common/memory_tracker.h"
#include "core/options.h"
#include "telemetry/recorder.h"

namespace sqloop {
class ThreadPool;
}

namespace sqloop::core {

/// A transient failure about to be retried (see DESIGN.md "Failure model
/// & resilience").
struct RetryEvent {
  std::string what;      // which operation failed, e.g. "compute"
  int64_t partition;     // affected partition, -1 for master-side work
  int attempt;           // the attempt that just failed (1-based)
  int64_t backoff_ms;    // sleep before the next attempt
  std::string error;     // the transient error's message
};

/// The runner shed capacity instead of aborting.
struct DegradeEvent {
  enum class Kind {
    kWorkerRetired,         // a worker exhausted its retry budget
    kMasterTookOver,        // master re-executed tasks workers abandoned
  };
  Kind kind;
  size_t remaining_workers;  // live workers after the event
  std::string reason;
};

/// Callbacks fired while an iterative or emulated-recursive CTE executes.
/// OnRoundStart/OnRoundEnd/OnFallback arrive on the thread driving the run:
/// the caller of SqLoop::Execute, or a JobServer dispatcher thread when the
/// query runs as a service job. OnTaskComplete arrives on worker threads, possibly
/// concurrently — implementations must be thread-safe — and only fires in
/// telemetry-enabled builds (the default; see DESIGN.md "Observability").
/// OnRetry and OnDegrade also arrive on worker threads and must be
/// thread-safe; unlike OnTaskComplete they fire in ALL builds (resilience
/// is behaviour, not observability).
/// Callbacks must not re-enter the SqLoop instance that is executing.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// A new round is about to run (1-based).
  virtual void OnRoundStart(int64_t round) { (void)round; }

  /// A round finished; `round` carries its per-round statistics.
  virtual void OnRoundEnd(const telemetry::IterationStats& round) {
    (void)round;
  }

  /// One Compute/Gather/priority task (or a master-side setup/final span)
  /// completed.
  virtual void OnTaskComplete(const telemetry::TaskSpan& span) { (void)span; }

  /// The parallel engine declined the query and fell back to the
  /// single-threaded loop.
  virtual void OnFallback(const std::string& reason) { (void)reason; }

  /// A transient failure was absorbed and the operation will be retried.
  virtual void OnRetry(const RetryEvent& event) { (void)event; }

  /// The run degraded (worker retired / master took over) instead of
  /// aborting.
  virtual void OnDegrade(const DegradeEvent& event) { (void)event; }
};

/// Hook a scheduler installs to interleave many jobs' rounds over one
/// shared worker pool. The runner calls BeginRound before dispatching a
/// round's tasks and EndRound after the round (including its barrier)
/// finishes, so the scheduler can make jobs yield the pool between rounds.
/// BeginRound may block (waiting for a fair-share grant) and may throw —
/// JobCancelledError is the cooperative cancellation point. EndRound must
/// not throw: it runs on the unwind path too.
class RoundGate {
 public:
  virtual ~RoundGate() = default;
  virtual void BeginRound(int64_t round) = 0;
  virtual void EndRound(int64_t round) noexcept = 0;
};

/// Everything an execution strategy needs besides the query itself: the
/// per-call options, the stats sink, and the optional telemetry recorder /
/// observer. Bundled so runner signatures survive future additions.
/// `gate` and `shared_pool` are set only by the job server: the gate makes
/// the round loop yieldable, and the shared pool replaces the runner's
/// private ThreadPool so concurrent jobs multiplex one worker set.
/// `cancel` and `memory` are the governance hooks: the token preempts the
/// run pre-statement and mid-statement, and the tracker scopes every
/// connection's transient-memory charges to the job's budget.
struct ExecutionContext {
  const SqloopOptions& options;
  RunStats& stats;
  telemetry::Recorder* recorder = nullptr;
  ExecutionObserver* observer = nullptr;
  RoundGate* gate = nullptr;
  ThreadPool* shared_pool = nullptr;
  const CancelToken* cancel = nullptr;
  MemoryTracker* memory = nullptr;
};

}  // namespace sqloop::core
