// The observer half of the execution API: callers register an
// ExecutionObserver on a SqLoop instance and receive round-boundary and
// task-completion callbacks during iterative/recursive executions, instead
// of polling the database or diffing RunStats after the fact.
#pragma once

#include <string>

#include "core/options.h"
#include "telemetry/recorder.h"

namespace sqloop::core {

/// A transient failure about to be retried (see DESIGN.md "Failure model
/// & resilience").
struct RetryEvent {
  std::string what;      // which operation failed, e.g. "compute"
  int64_t partition;     // affected partition, -1 for master-side work
  int attempt;           // the attempt that just failed (1-based)
  int64_t backoff_ms;    // sleep before the next attempt
  std::string error;     // the transient error's message
};

/// The runner shed capacity instead of aborting.
struct DegradeEvent {
  enum class Kind {
    kWorkerRetired,         // a worker exhausted its retry budget
    kMasterTookOver,        // master re-executed tasks workers abandoned
  };
  Kind kind;
  size_t remaining_workers;  // live workers after the event
  std::string reason;
};

/// Callbacks fired while an iterative or emulated-recursive CTE executes.
/// OnRoundStart/OnRoundEnd/OnFallback arrive on the thread that called
/// SqLoop::Execute. OnTaskComplete arrives on worker threads, possibly
/// concurrently — implementations must be thread-safe — and only fires in
/// telemetry-enabled builds (the default; see DESIGN.md "Observability").
/// OnRetry and OnDegrade also arrive on worker threads and must be
/// thread-safe; unlike OnTaskComplete they fire in ALL builds (resilience
/// is behaviour, not observability).
/// Callbacks must not re-enter the SqLoop instance that is executing.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// A new round is about to run (1-based).
  virtual void OnRoundStart(int64_t round) { (void)round; }

  /// A round finished; `round` carries its per-round statistics.
  virtual void OnRoundEnd(const telemetry::IterationStats& round) {
    (void)round;
  }

  /// One Compute/Gather/priority task (or a master-side setup/final span)
  /// completed.
  virtual void OnTaskComplete(const telemetry::TaskSpan& span) { (void)span; }

  /// The parallel engine declined the query and fell back to the
  /// single-threaded loop.
  virtual void OnFallback(const std::string& reason) { (void)reason; }

  /// A transient failure was absorbed and the operation will be retried.
  virtual void OnRetry(const RetryEvent& event) { (void)event; }

  /// The run degraded (worker retired / master took over) instead of
  /// aborting.
  virtual void OnDegrade(const DegradeEvent& event) { (void)event; }
};

/// Everything an execution strategy needs besides the query itself: the
/// per-call options, the stats sink, and the optional telemetry recorder /
/// observer. Bundled so runner signatures survive future additions.
struct ExecutionContext {
  const SqloopOptions& options;
  RunStats& stats;
  telemetry::Recorder* recorder = nullptr;
  ExecutionObserver* observer = nullptr;
};

}  // namespace sqloop::core
