// The observer half of the execution API: callers register an
// ExecutionObserver on a SqLoop instance and receive round-boundary and
// task-completion callbacks during iterative/recursive executions, instead
// of polling the database or diffing RunStats after the fact.
#pragma once

#include <string>

#include "core/options.h"
#include "telemetry/recorder.h"

namespace sqloop::core {

/// Callbacks fired while an iterative or emulated-recursive CTE executes.
/// OnRoundStart/OnRoundEnd/OnFallback arrive on the thread that called
/// SqLoop::Execute. OnTaskComplete arrives on worker threads, possibly
/// concurrently — implementations must be thread-safe — and only fires in
/// telemetry-enabled builds (the default; see DESIGN.md "Observability").
/// Callbacks must not re-enter the SqLoop instance that is executing.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// A new round is about to run (1-based).
  virtual void OnRoundStart(int64_t round) { (void)round; }

  /// A round finished; `round` carries its per-round statistics.
  virtual void OnRoundEnd(const telemetry::IterationStats& round) {
    (void)round;
  }

  /// One Compute/Gather/priority task (or a master-side setup/final span)
  /// completed.
  virtual void OnTaskComplete(const telemetry::TaskSpan& span) { (void)span; }

  /// The parallel engine declined the query and fell back to the
  /// single-threaded loop.
  virtual void OnFallback(const std::string& reason) { (void)reason; }
};

/// Everything an execution strategy needs besides the query itself: the
/// per-call options, the stats sink, and the optional telemetry recorder /
/// observer. Bundled so runner signatures survive future additions.
struct ExecutionContext {
  const SqloopOptions& options;
  RunStats& stats;
  telemetry::Recorder* recorder = nullptr;
  ExecutionObserver* observer = nullptr;
};

}  // namespace sqloop::core
