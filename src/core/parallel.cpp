#include "core/parallel.h"

#include "core/schema_infer.h"
#include "sql/parser.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dbc/driver.h"
#include "dbc/prepared_statement.h"
#include "minidb/schema.h"
#include "telemetry/hooks.h"

namespace sqloop::core {
namespace {

using minidb::FoldIdentifier;

std::string ReplaceAll(std::string text, const std::string& needle,
                       const std::string& replacement) {
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    text.replace(pos, needle.size(), replacement);
    pos += replacement.size();
  }
  return text;
}

/// Identity element of the aggregate's accumulation (paper §V-D).
Value AggregateIdentity(sql::AggFunc f) {
  switch (f) {
    case sql::AggFunc::kSum:
    case sql::AggFunc::kCount:
    case sql::AggFunc::kAvg:
      return Value(0.0);
    case sql::AggFunc::kMin:
      return Value(std::numeric_limits<double>::infinity());
    case sql::AggFunc::kMax:
      return Value(-std::numeric_limits<double>::infinity());
  }
  throw UsageError("unknown aggregate");
}

/// The aggregate the Gather side applies to partial message values —
/// COUNT partials are combined with SUM (paper §V-D).
sql::AggFunc GatherAggregate(sql::AggFunc f) {
  switch (f) {
    case sql::AggFunc::kSum:
    case sql::AggFunc::kCount:
      return sql::AggFunc::kSum;
    case sql::AggFunc::kMin:
      return sql::AggFunc::kMin;
    case sql::AggFunc::kMax:
      return sql::AggFunc::kMax;
    case sql::AggFunc::kAvg:
      break;  // AVG gathers SUM/COUNT pairs; handled separately
  }
  throw UsageError("GatherAggregate not defined for AVG");
}

// Hidden accumulator columns backing parallel AVG (paper §V-D: a Gather
// needs both the SUM and the COUNT to accumulate averages).
constexpr const char* kAvgSumColumn = "sqloop_avg_sum";
constexpr const char* kAvgCntColumn = "sqloop_avg_cnt";

// Hidden send-gating column for MIN/MAX workloads: the DAIC model only
// propagates *changed* deltas, so a row re-sends only after a gather
// improved it (otherwise converged regions would message forever and
// AsyncP could never skip them). 1 = changed since the last Compute.
constexpr const char* kDirtyColumn = "sqloop_dirty";

// Dispatch tracing for scheduler debugging (SQLOOP_SCHED_TRACE=1).
const bool kSchedulerTrace = std::getenv("SQLOOP_SCHED_TRACE") != nullptr;

}  // namespace

ParallelRunner::ParallelRunner(std::string url, dbc::Connection& master,
                               const sql::WithClause& with,
                               const CteAnalysis& analysis,
                               std::vector<sql::ColumnDef> schema,
                               const ExecutionContext& ctx)
    : url_(std::move(url)),
      master_(master),
      with_(with),
      analysis_(analysis),
      options_(ctx.options),
      stats_(ctx.stats),
      recorder_(ctx.recorder),
      observer_(ctx.observer),
      gate_(ctx.gate),
      shared_pool_(ctx.shared_pool),
      translator_(Translator::For(master)),
      schema_(std::move(schema)),
      checker_(with.termination, translator_, analysis.cte_name),
      partitions_(static_cast<size_t>(std::max(ctx.options.partitions, 1))),
      base_(analysis.cte_name),
      retrier_(ctx.options.retry, ctx.recorder, ctx.observer) {
  // Every connection the run touches — the lent master, each worker's
  // connection, spares opened for takeover — carries the run's governance
  // hooks, so cancellation and the memory budget cover all of them.
  retrier_.set_cancel_token(ctx.cancel);
  retrier_.set_memory_tracker(ctx.memory);
  retrier_.set_cancel_check_rows(ctx.options.cancel_check_rows);
  consumed_.assign(partitions_, 0);
  priorities_.assign(partitions_, std::nullopt);
  priority_known_.assign(partitions_, false);

  // Message table layout (paper §V-C/§V-D), plus an indexed target-
  // partition column so each Gather reads only its own rows ("indexes on
  // all tables ... ensure that unnecessary scans will be avoided", §V-C).
  message_schema_.push_back({"id", schema_[0].type, ""});
  if (analysis_.aggregate == sql::AggFunc::kAvg) {
    message_schema_.push_back({"sval", ValueType::kDouble, ""});
    message_schema_.push_back({"cval", ValueType::kInt64, ""});
  } else {
    message_schema_.push_back({"val", ValueType::kDouble, ""});
  }
  message_schema_.push_back({"target_pt", ValueType::kInt64, ""});
}

std::string ParallelRunner::PartitionTable(size_t k) const {
  return base_ + "_pt" + std::to_string(k);
}

std::string ParallelRunner::MjoinTable(size_t k) const {
  return base_ + "_mj" + std::to_string(k);
}

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

void ParallelRunner::DropLeftovers() {
  MasterExecute("DROP VIEW IF EXISTS " + translator_.Quote(base_));
  master_.AddBatch(translator_.DropTableSql(base_));
  master_.AddBatch(translator_.DropTableSql(base_ + "_seed"));
  master_.AddBatch(translator_.DropTableSql(base_ + "_delta"));
  for (size_t k = 0; k < partitions_; ++k) {
    master_.AddBatch(translator_.DropTableSql(PartitionTable(k)));
    master_.AddBatch(translator_.DropTableSql(MjoinTable(k)));
  }
  MasterExecuteBatch();
}

void ParallelRunner::CreatePartitions() {
  const std::string staging = base_ + "_seed";
  MasterExecute(translator_.CreateTableSql(staging, schema_, -1));
  MasterExecute("INSERT INTO " + translator_.Quote(staging) + " " +
                translator_.Render(*with_.seed));

  // Partition schema: declared columns (+ hidden accumulator/gating
  // columns depending on the aggregate).
  std::vector<sql::ColumnDef> partition_schema = schema_;
  const bool avg = analysis_.aggregate == sql::AggFunc::kAvg;
  const bool minmax = analysis_.aggregate == sql::AggFunc::kMin ||
                      analysis_.aggregate == sql::AggFunc::kMax;
  if (avg) {
    partition_schema.push_back({kAvgSumColumn, ValueType::kDouble, ""});
    partition_schema.push_back({kAvgCntColumn, ValueType::kInt64, ""});
  }
  if (minmax) {
    partition_schema.push_back({kDirtyColumn, ValueType::kInt64, ""});
  }

  std::string column_list = "(";
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (c > 0) column_list += ", ";
    column_list += translator_.Quote(schema_[c].name);
  }
  column_list += ")";

  const std::string key = translator_.Quote(schema_[0].name);
  const std::string p = std::to_string(partitions_);
  for (size_t k = 0; k < partitions_; ++k) {
    master_.AddBatch(translator_.CreateTableSql(PartitionTable(k),
                                                partition_schema,
                                                /*primary_key_index=*/0));
    // Hash partitioning on Rid (paper §V-B): ((key % P) + P) % P == k.
    master_.AddBatch("INSERT INTO " + translator_.Quote(PartitionTable(k)) +
                     " " + column_list + " SELECT * FROM " +
                     translator_.Quote(staging) + " WHERE ((" + key + " % " +
                     p + ") + " + p + ") % " + p + " = " +
                     std::to_string(k));
    if (avg) {
      master_.AddBatch("UPDATE " + translator_.Quote(PartitionTable(k)) +
                       " SET " + std::string(kAvgSumColumn) + " = 0, " +
                       std::string(kAvgCntColumn) + " = 0");
    }
    if (minmax) {
      // Everything is "changed" at the start: the seed values have never
      // been sent.
      master_.AddBatch("UPDATE " + translator_.Quote(PartitionTable(k)) +
                       " SET " + std::string(kDirtyColumn) + " = 1");
    }
  }
  master_.AddBatch(translator_.DropTableSql(staging));
  MasterExecuteBatch();
}

void ParallelRunner::CreateUnionView() {
  // R becomes a view of Rpt1 ∪ Rpt2 ∪ ... (paper §V-B), exposing exactly
  // the declared CTE columns (hidden AVG accumulators stay hidden).
  auto view_select = std::make_unique<sql::SelectStmt>();
  for (size_t k = 0; k < partitions_; ++k) {
    sql::SelectCore core;
    for (const auto& def : schema_) {
      core.items.push_back({sql::MakeColumnRef("", def.name), ""});
    }
    core.from = sql::MakeBaseTable(PartitionTable(k));
    if (k > 0) view_select->set_ops.push_back(sql::SetOp::kUnionAll);
    view_select->cores.push_back(std::move(core));
  }
  sql::Statement create;
  create.kind = sql::StatementKind::kCreateView;
  create.table_name = base_;
  create.view_select = std::move(view_select);
  MasterExecute(translator_.Render(create));
}

void ParallelRunner::MaterializeConstantJoins() {
  if (!options_.materialize_constant_join) return;  // ablation knob
  // Rmjoin (paper §V-B): the join's constant side — the bridging relation
  // filtered to rows whose from-key lives in the partition, projected to
  // the columns Ri actually uses.
  std::vector<sql::ColumnDef> mjoin_schema =
      retrier_.Run(master_, "setup", -1, [&] {
        return InferTableColumns(master_, translator_, analysis_.mid_table,
                                 analysis_.mid_columns_used);
      });

  std::string projection;
  for (size_t c = 0; c < analysis_.mid_columns_used.size(); ++c) {
    if (c > 0) projection += ", ";
    projection += "m." + translator_.Quote(analysis_.mid_columns_used[c]);
  }

  for (size_t k = 0; k < partitions_; ++k) {
    const std::string mjoin = MjoinTable(k);
    master_.AddBatch(translator_.CreateTableSql(mjoin, mjoin_schema, -1));
    master_.AddBatch(
        "INSERT INTO " + translator_.Quote(mjoin) + " SELECT " + projection +
        " FROM " + translator_.Quote(analysis_.mid_table) + " AS m JOIN " +
        translator_.Quote(PartitionTable(k)) + " AS r ON m." +
        translator_.Quote(analysis_.mid_from_key) + " = r." +
        translator_.Quote(schema_[0].name));
    // Index the scan key so the message query can do index nested loops
    // on MySQL-style engines (paper §V-C: "indexes on all tables").
    master_.AddBatch("CREATE INDEX " +
                     translator_.Quote(mjoin + "_from") + " ON " +
                     translator_.Quote(mjoin) + " (" +
                     translator_.Quote(analysis_.mid_from_key) + ")");
    if (k % 16 == 15) MasterExecuteBatch();
  }
  MasterExecuteBatch();
}

void ParallelRunner::BuildTaskSql() {
  const bool avg = analysis_.aggregate == sql::AggFunc::kAvg;
  const bool keep_delta = analysis_.aggregate == sql::AggFunc::kMin ||
                          analysis_.aggregate == sql::AggFunc::kMax;
  const std::string key = schema_[0].name;

  message_select_.resize(partitions_);
  update_sql_.resize(partitions_);

  for (size_t k = 0; k < partitions_; ++k) {
    const std::string pt = PartitionTable(k);

    // Step 1 of Compute: the message query — Ridelta computed from the
    // partition's own rows joined with its materialized constant join.
    // (Runs before the own-column update; the workloads' message
    // expressions read Delta or LEAST(own, Delta), both invariant under
    // that update.)
    {
      auto select = std::make_unique<sql::SelectStmt>();
      sql::SelectCore core;
      core.items.push_back(
          {sql::MakeColumnRef(analysis_.mid_alias, analysis_.mid_to_key),
           "id"});
      if (avg) {
        const sql::Expr* agg = nullptr;
        {
          std::vector<const sql::Expr*> aggs;
          minidb::CollectAggregates(*analysis_.delta_expr, aggs);
          agg = aggs.at(0);
        }
        core.items.push_back({sql::MakeAggregate(sql::AggFunc::kSum,
                                                 agg->args[0]->Clone()),
                              "sval"});
        core.items.push_back({sql::MakeAggregate(sql::AggFunc::kCount,
                                                 agg->args[0]->Clone()),
                              "cval"});
      } else {
        core.items.push_back({analysis_.delta_expr->Clone(), "val"});
      }
      const std::string join_source = options_.materialize_constant_join
                                          ? MjoinTable(k)
                                          : analysis_.mid_table;
      core.from = sql::MakeJoin(
          sql::JoinKind::kInner,
          sql::MakeBaseTable(pt, analysis_.self_alias),
          sql::MakeBaseTable(join_source, analysis_.mid_alias),
          sql::MakeBinary(
              sql::BinaryOp::kEq,
              sql::MakeColumnRef(analysis_.self_alias, key),
              sql::MakeColumnRef(analysis_.mid_alias,
                                 analysis_.mid_from_key)));
      {
        // target_pt = ((to_key % P) + P) % P — which partition owns the row.
        const auto p_lit = [&] {
          return sql::MakeLiteral(
              Value(static_cast<int64_t>(partitions_)));
        };
        auto mod = sql::MakeBinary(
            sql::BinaryOp::kMod,
            sql::MakeBinary(
                sql::BinaryOp::kAdd,
                sql::MakeBinary(sql::BinaryOp::kMod,
                                sql::MakeColumnRef(analysis_.mid_alias,
                                                   analysis_.mid_to_key),
                                p_lit()),
                p_lit()),
            p_lit());
        core.items.push_back({std::move(mod), "target_pt"});
      }
      if (analysis_.where != nullptr) core.where = analysis_.where->Clone();
      if (keep_delta) {
        // MIN/MAX: only rows whose delta improved since the last Compute
        // have anything new to say (DAIC change propagation).
        core.where = sql::AndTogether(
            std::move(core.where),
            sql::MakeBinary(sql::BinaryOp::kEq,
                            sql::MakeColumnRef(analysis_.self_alias,
                                               kDirtyColumn),
                            sql::MakeLiteral(Value(int64_t{1}))));
      }
      core.group_by.push_back(
          sql::MakeColumnRef(analysis_.mid_alias, analysis_.mid_to_key));
      select->cores.push_back(std::move(core));
      message_select_[k] = translator_.Render(*select);
    }

    // Step 2 of Compute, combined: update the partition's own columns and
    // reset the delta to the aggregate's identity — one statement, one
    // table scan. MIN/MAX deltas are NOT reset: their accumulation is
    // idempotent, and resetting would make freshly gathered (identical)
    // minima count as row updates forever, so `UNTIL n UPDATES` could
    // never trigger on cyclic graphs.
    {
      sql::Statement update;
      update.kind = sql::StatementKind::kUpdate;
      update.table_name = pt;
      update.update_alias = analysis_.primary_alias;
      for (const auto& own : analysis_.own_columns) {
        update.set_items.emplace_back(own.name, own.expr->Clone());
      }
      if (!keep_delta) {
        update.set_items.emplace_back(
            analysis_.delta_column,
            sql::MakeLiteral(AggregateIdentity(analysis_.aggregate)));
        if (avg) {
          update.set_items.emplace_back(kAvgSumColumn,
                                        sql::MakeLiteral(Value(0.0)));
          update.set_items.emplace_back(kAvgCntColumn,
                                        sql::MakeLiteral(Value(int64_t{0})));
        }
      } else {
        // The messages just sent cover everything changed so far.
        update.set_items.emplace_back(kDirtyColumn,
                                      sql::MakeLiteral(Value(int64_t{0})));
      }
      if (!update.set_items.empty()) {
        update_sql_[k] = translator_.Render(update);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

uint64_t ParallelRunner::RunCompute(size_t partition, dbc::Connection& conn,
                                    ComputeAttempt& attempt) {
  uint64_t updates = 0;

  if (!attempt.messages_done) {
    if (!attempt.orphan.empty()) {
      // A previous attempt failed after creating its message table but
      // before handing it to the registry; a retry must not leave that
      // partial table behind (DROP ... IF EXISTS also covers a fault
      // before the CREATE was applied).
      const std::string orphan = attempt.orphan;
      conn.Execute(translator_.DropTableSql(orphan));
      ClearPendingOrphan(orphan);
      attempt.orphan.clear();
    }
    const uint64_t seq = message_seq_.fetch_add(1);
    const std::string msg = base_ + "_msg" + std::to_string(seq);
    attempt.orphan = msg;
    // Track the name before the CREATE: if a fatal error (cancellation,
    // quota) aborts this task mid-INSERT, the retry path that normally
    // drops the orphan never runs, and Cleanup must know the name or the
    // table would survive the run and collide with a resumed incarnation
    // re-allocating the same seq.
    AddPendingOrphan(msg);
    conn.Execute(translator_.CreateTableSql(msg, message_schema_, -1));
    const size_t produced = conn.ExecuteUpdate(
        "INSERT INTO " + translator_.Quote(msg) + " " +
        message_select_[partition]);
    if (produced > 0) {
      conn.Execute("CREATE INDEX " + translator_.Quote(msg + "_t") + " ON " +
                   translator_.Quote(msg) + " (target_pt)");
      std::vector<size_t> targets;
      if (options_.mode == ExecutionMode::kAsyncPriority) {
        // Record which partitions this table addresses so idle partitions
        // can be skipped safely (paper SV-E: avoid unproductive tasks).
        const auto result = conn.ExecuteQuery(
            "SELECT DISTINCT target_pt FROM " + translator_.Quote(msg));
        targets.reserve(result.rows.size());
        for (const auto& row : result.rows) {
          targets.push_back(static_cast<size_t>(row[0].as_int()));
        }
        std::sort(targets.begin(), targets.end());
      }
      // Once registered the table is owned by the registry — and must
      // never be registered twice, or gathers would double-count deltas.
      ClearPendingOrphan(msg);
      attempt.orphan.clear();
      RegisterMessageTable(msg, partition, std::move(targets));
    } else {
      conn.Execute(translator_.DropTableSql(msg));
      ClearPendingOrphan(msg);
      attempt.orphan.clear();
    }
    attempt.messages_done = true;
  }

  if (!update_sql_[partition].empty()) {
    updates += conn.ExecuteUpdate(update_sql_[partition]);
  }
  compute_tasks_.fetch_add(1);
  return updates;
}

uint64_t ParallelRunner::RunGather(size_t partition, dbc::Connection& conn) {
  auto [unread, upto] = UnreadMessages(partition);
  if (unread.empty()) {
    MarkConsumed(partition, upto);  // nothing addressed to this partition
    gather_tasks_.fetch_add(1);
    return 0;
  }

  // One statement unions every unread message table (paper §V-C: "a
  // single query that contains the union of all the message tables");
  // each arm reads only this partition's rows through the target index.
  const bool avg_msgs = analysis_.aggregate == sql::AggFunc::kAvg;
  const std::string msg_columns = avg_msgs ? "id, sval, cval" : "id, val";
  std::string union_sql;
  for (size_t i = 0; i < unread.size(); ++i) {
    if (i > 0) union_sql += " UNION ALL ";
    union_sql += "SELECT " + msg_columns + " FROM " +
                 translator_.Quote(unread[i]) + " WHERE target_pt = " +
                 std::to_string(partition);
  }

  const std::string pt = translator_.Quote(PartitionTable(partition));
  const std::string alias = translator_.Quote(analysis_.primary_alias);
  const std::string delta = translator_.Quote(analysis_.delta_column);
  const std::string key = translator_.Quote(schema_[0].name);

  std::string sql;
  if (analysis_.aggregate == sql::AggFunc::kAvg) {
    // Accumulate SUM/COUNT pairs, recompute the user's expression with the
    // aggregate replaced by the accumulated ratio (paper §V-D).
    const sql::Expr* agg = nullptr;
    {
      std::vector<const sql::Expr*> aggs;
      minidb::CollectAggregates(*analysis_.delta_expr, aggs);
      agg = aggs.at(0);
    }
    const std::string sum_ref =
        "(" + alias + "." + std::string(kAvgSumColumn) + " + m.s)";
    const std::string cnt_ref =
        "(" + alias + "." + std::string(kAvgCntColumn) + " + m.c)";
    const auto ratio =
        sql::ParseSelect("SELECT " + sum_ref + " / (" + cnt_ref + " + 0.0)");
    const auto rewritten = SubstituteAggregate(
        *analysis_.delta_expr, *agg, *ratio->cores[0].items[0].expr);
    sql = "UPDATE " + pt + " AS " + alias + " SET " +
          std::string(kAvgSumColumn) + " = " + alias + "." +
          std::string(kAvgSumColumn) + " + m.s, " +
          std::string(kAvgCntColumn) + " = " + alias + "." +
          std::string(kAvgCntColumn) + " + m.c, " + delta +
          " = CASE WHEN " + cnt_ref + " = 0 THEN " + alias + "." + delta +
          " ELSE " + translator_.Render(*rewritten) + " END" +
          " FROM (SELECT id, SUM(sval) AS s, SUM(cval) AS c FROM (" +
          union_sql + ") AS msgs GROUP BY id) AS m WHERE " + alias + "." +
          key + " = m.id";
  } else {
    std::string combine;
    std::string dirty_update;
    switch (analysis_.aggregate) {
      case sql::AggFunc::kSum:
      case sql::AggFunc::kCount:
        combine = alias + "." + delta + " + m.v";
        break;
      case sql::AggFunc::kMin:
        combine = "LEAST(" + alias + "." + delta + ", m.v)";
        dirty_update = ", " + std::string(kDirtyColumn) +
                       " = CASE WHEN m.v < " + alias + "." + delta +
                       " THEN 1 ELSE " + alias + "." +
                       std::string(kDirtyColumn) + " END";
        break;
      case sql::AggFunc::kMax:
        combine = "GREATEST(" + alias + "." + delta + ", m.v)";
        dirty_update = ", " + std::string(kDirtyColumn) +
                       " = CASE WHEN m.v > " + alias + "." + delta +
                       " THEN 1 ELSE " + alias + "." +
                       std::string(kDirtyColumn) + " END";
        break;
      default:
        throw UsageError("unexpected aggregate in gather");
    }
    sql = "UPDATE " + pt + " AS " + alias + " SET " + delta + " = " +
          combine + dirty_update + " FROM (SELECT id, " +
          std::string(sql::AggFuncName(GatherAggregate(analysis_.aggregate))) +
          "(val) AS v FROM (" + union_sql +
          ") AS msgs GROUP BY id) AS m WHERE " + alias + "." + key +
          " = m.id";
  }

  const uint64_t updates = conn.ExecuteUpdate(sql);
  MarkConsumed(partition, upto);
  // Counted at completion (not entry) so a retried gather counts once.
  gather_tasks_.fetch_add(1);
  messages_consumed_.fetch_add(unread.size());
  return updates;
}

uint64_t ParallelRunner::TimedCompute(size_t partition, dbc::Connection& conn,
                                      ComputeAttempt& attempt) {
  const double start = run_watch_.ElapsedSeconds();
  const uint64_t updates = RunCompute(partition, conn, attempt);
  const double duration = run_watch_.ElapsedSeconds() - start;
  compute_ns_.fetch_add(static_cast<uint64_t>(duration * 1e9));
  EmitSpan(telemetry::SpanKind::kCompute, static_cast<int64_t>(partition),
           start, duration, updates);
  return updates;
}

uint64_t ParallelRunner::TimedGather(size_t partition, dbc::Connection& conn) {
  const double start = run_watch_.ElapsedSeconds();
  const uint64_t updates = RunGather(partition, conn);
  const double duration = run_watch_.ElapsedSeconds() - start;
  gather_ns_.fetch_add(static_cast<uint64_t>(duration * 1e9));
  EmitSpan(telemetry::SpanKind::kGather, static_cast<int64_t>(partition),
           start, duration, updates);
  return updates;
}

// ---------------------------------------------------------------------------
// Resilience (DESIGN.md "Failure model & resilience")
// ---------------------------------------------------------------------------

void ParallelRunner::MasterExecute(const std::string& sql) {
  retrier_.Run(master_, "master", -1, [&] {
    master_.Execute(sql);
    return 0;
  });
}

void ParallelRunner::MasterExecuteBatch() {
  // Safe to retry as one unit: a fault strikes before any batched
  // statement executes, and the queued batch survives the failure (and a
  // Reopen), so a retry resubmits exactly the original statements.
  retrier_.Run(master_, "master-batch", -1, [&] {
    master_.ExecuteBatch();
    return 0;
  });
}

void ParallelRunner::RunSpec(dbc::Connection& conn, TaskSpec& spec) {
  const size_t k = spec.partition;
  const auto partition = static_cast<int64_t>(k);
  if (spec.do_gather) {
    const uint64_t updates = retrier_.Run(conn, "gather", partition, [&] {
      return TimedGather(k, conn);
    });
    round_updates_.fetch_add(updates);
    spec.updates += updates;
    spec.do_gather = false;
  }
  if (spec.do_compute) {
    const uint64_t updates = retrier_.Run(conn, "compute", partition, [&] {
      return TimedCompute(k, conn, spec.compute);
    });
    round_updates_.fetch_add(updates);
    spec.updates += updates;
    spec.do_compute = false;
  }
  if (spec.refresh != RefreshMode::kNone) {
    if (spec.refresh == RefreshMode::kAlways || spec.updates > 0) {
      retrier_.Run(conn, "priority", partition, [&] {
        RefreshPriority(k, conn);
        return 0;
      });
    } else {
      // An unchanged partition keeps no claim to the scheduler's
      // attention until messages arrive for it.
      const std::scoped_lock lock(priority_mutex_);
      priorities_[k] = std::nullopt;
      priority_known_[k] = true;
    }
    spec.refresh = RefreshMode::kNone;
  }
}

void ParallelRunner::AbandonTask(TaskSpec spec) {
  const std::scoped_lock lock(degrade_mutex_);
  abandoned_.push_back(std::move(spec));
}

void ParallelRunner::DrainAbandoned() {
  std::vector<TaskSpec> pending;
  size_t remaining_workers = 0;
  {
    const std::scoped_lock lock(degrade_mutex_);
    pending.swap(abandoned_);
    remaining_workers = live_workers_;
  }
  if (pending.empty()) return;
  if (!round_degraded_) {
    round_degraded_ = true;
    ++degraded_rounds_;
    SQLOOP_COUNT(recorder_, "resilience.degraded_rounds", 1);
  }
  if (observer_ != nullptr) {
    observer_->OnDegrade(
        {DegradeEvent::Kind::kMasterTookOver, remaining_workers,
         std::to_string(pending.size()) +
             " abandoned task(s) re-executed on the master connection"});
  }
  // The last rung of the ladder: with every worker retired this loop IS
  // the single-thread fallback — the round completes on the master alone.
  // RetryExhausted here has no rung left below it and aborts the run.
  for (TaskSpec& spec : pending) {
    RunSpec(master_, spec);
  }
}

void ParallelRunner::FlushResilienceStats() {
  // += rather than =: a setup-phase Retrier (schema inference in sqloop.cpp)
  // may have accumulated counts before this runner existed.
  stats_.retries += retrier_.retries();
  stats_.reopened_connections += retrier_.reopened_connections();
  stats_.timeouts += retrier_.timeouts();
  stats_.workers_retired += workers_retired_.load();
  stats_.degraded_rounds += degraded_rounds_;
  stats_.partitions_rebalanced += rebalanced_.load();
  stats_.speculative_tasks += speculative_tasks_.load();
  stats_.speculative_wins += speculative_wins_.load();
  stats_.speculative_losses += speculative_losses_.load();
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

void ParallelRunner::EmitSpan(telemetry::SpanKind kind, int64_t partition,
                              double start, double duration,
                              uint64_t updates) {
#if SQLOOP_TELEMETRY_ENABLED
  if (recorder_ == nullptr && observer_ == nullptr) return;
  telemetry::TaskSpan span;
  span.kind = kind;
  span.round = current_round_.load(std::memory_order_relaxed);
  span.partition = partition;
  span.thread_id = telemetry::Recorder::ThisThreadId();
  span.start_seconds = start;
  span.duration_seconds = duration;
  span.updates = updates;
  if (recorder_ != nullptr) recorder_->RecordSpan(span);
  if (observer_ != nullptr) observer_->OnTaskComplete(span);
#else
  (void)kind;
  (void)partition;
  (void)start;
  (void)duration;
  (void)updates;
#endif
}

void ParallelRunner::FinishRound(int64_t round, uint64_t updates,
                                 double round_start, double barrier_wait) {
  telemetry::IterationStats it;
  it.round = round;
  it.updates = updates;
  const uint64_t compute_tasks = compute_tasks_.load();
  const uint64_t gather_tasks = gather_tasks_.load();
  const uint64_t produced = message_count_.load();
  const uint64_t consumed = messages_consumed_.load();
  const uint64_t compute_ns = compute_ns_.load();
  const uint64_t gather_ns = gather_ns_.load();
  it.compute_tasks = compute_tasks - prev_compute_tasks_;
  it.gather_tasks = gather_tasks - prev_gather_tasks_;
  it.compute_seconds = static_cast<double>(compute_ns - prev_compute_ns_) * 1e-9;
  it.gather_seconds = static_cast<double>(gather_ns - prev_gather_ns_) * 1e-9;
  it.barrier_wait_seconds = barrier_wait;
  it.messages_produced = produced - prev_messages_produced_;
  it.messages_consumed = consumed - prev_messages_consumed_;
  it.partitions_skipped = stats_.skipped_tasks - prev_skipped_;
  it.seconds = run_watch_.ElapsedSeconds() - round_start;
  prev_compute_tasks_ = compute_tasks;
  prev_gather_tasks_ = gather_tasks;
  prev_messages_produced_ = produced;
  prev_messages_consumed_ = consumed;
  prev_compute_ns_ = compute_ns;
  prev_gather_ns_ = gather_ns;
  prev_skipped_ = stats_.skipped_tasks;
  if (recorder_ != nullptr) recorder_->RecordIteration(it);
  if (observer_ != nullptr) observer_->OnRoundEnd(it);
}

// ---------------------------------------------------------------------------
// Message registry
// ---------------------------------------------------------------------------

void ParallelRunner::AddPendingOrphan(const std::string& name) {
  const std::scoped_lock lock(registry_mutex_);
  pending_orphans_.insert(name);
}

void ParallelRunner::ClearPendingOrphan(const std::string& name) {
  const std::scoped_lock lock(registry_mutex_);
  pending_orphans_.erase(name);
}

void ParallelRunner::RegisterMessageTable(std::string name, size_t source,
                                          std::vector<size_t> targets) {
  const std::scoped_lock lock(registry_mutex_);
  message_tables_.push_back(std::move(name));
  message_sources_.push_back(source);
  message_targets_.push_back(std::move(targets));
  message_count_.fetch_add(1);
}

std::pair<std::vector<std::string>, size_t> ParallelRunner::UnreadMessages(
    size_t partition) {
  const std::scoped_lock lock(registry_mutex_);
  const size_t upto = message_tables_.size();
  std::vector<size_t> indices;
  for (size_t i = consumed_[partition]; i < upto; ++i) {
    const auto& targets = message_targets_[i];
    if (targets.empty() ||
        std::binary_search(targets.begin(), targets.end(), partition)) {
      indices.push_back(i);
    }
  }
  // Registration order is a worker-timing race; the producing partition is
  // not. Ordering the union arms by source keeps the gather's accumulation
  // order — and every floating-point SUM — reproducible across runs and
  // pool widths (same-source ties keep creation order, which that
  // partition's serialized computes make deterministic).
  std::stable_sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
    return message_sources_[a] < message_sources_[b];
  });
  std::vector<std::string> unread;
  unread.reserve(indices.size());
  for (const size_t i : indices) unread.push_back(message_tables_[i]);
  return {std::move(unread), upto};
}

bool ParallelRunner::HasUnreadTargetedMessages(size_t partition) {
  // Caller holds registry_mutex_.
  for (size_t i = consumed_[partition]; i < message_tables_.size(); ++i) {
    const auto& targets = message_targets_[i];
    if (targets.empty() ||
        std::binary_search(targets.begin(), targets.end(), partition)) {
      return true;
    }
  }
  return false;
}

void ParallelRunner::MarkConsumed(size_t partition, size_t upto) {
  const std::scoped_lock lock(registry_mutex_);
  consumed_[partition] = std::max(consumed_[partition], upto);
}

void ParallelRunner::DropFullyConsumedMessages() {
  std::vector<std::string> droppable;
  size_t minimum = 0;
  {
    const std::scoped_lock lock(registry_mutex_);
    minimum = *std::min_element(consumed_.begin(), consumed_.end());
    for (size_t i = dropped_prefix_; i < minimum; ++i) {
      droppable.push_back(message_tables_[i]);
    }
  }
  if (droppable.empty()) return;
  for (const auto& name : droppable) {
    master_.AddBatch(translator_.DropTableSql(name));
  }
  MasterExecuteBatch();
  // Advance the prefix only once the drops are known to have executed: a
  // cancellation that aborts the batch must not mark the tables dropped,
  // or Cleanup would skip them and the leftovers would collide with a
  // resumed incarnation (the drops are IF EXISTS, so a retry after a
  // partially applied batch is harmless).
  const std::scoped_lock lock(registry_mutex_);
  dropped_prefix_ = std::max(dropped_prefix_, minimum);
}

// ---------------------------------------------------------------------------
// Checkpointing / recovery (DESIGN.md "Checkpointing & recovery")
// ---------------------------------------------------------------------------

void ParallelRunner::SetupCheckpointing() {
  const bool want = options_.checkpoint_every > 0;
  if (!want && !options_.resume) return;
  // Identity ties checkpoints to the exact job: same query text, same mode,
  // same partition count — a resumed run replays the same statements over
  // the same layout, which is what makes the restored state meaningful.
  const std::string job_id = CheckpointManager::JobId(
      base_ + '|' + translator_.Render(*with_.seed) + '|' +
      translator_.Render(*with_.step) + '|' +
      translator_.Render(*with_.final_query) + '|' +
      ExecutionModeName(options_.mode) + '|' + std::to_string(partitions_));
  if (options_.resume) {
    resume_from_ =
        RecoveryManager(options_.checkpoint_dir, job_id).FindLatestValid();
    if (resume_from_ != std::nullopt &&
        (resume_from_->mode != ExecutionModeName(options_.mode) ||
         resume_from_->partitions != static_cast<int64_t>(partitions_) ||
         resume_from_->partition_files.size() != partitions_ ||
         resume_from_->consumed.size() != partitions_)) {
      // Identity hashing should make this unreachable; a mismatched layout
      // cannot be resumed, so fall back to a fresh run.
      resume_from_.reset();
    }
  }
  if (want) {
    ckpt_ = std::make_unique<CheckpointManager>(options_.checkpoint_dir,
                                                job_id,
                                                options_.checkpoint_keep,
                                                options_.verify_checkpoints);
  }
}

bool ParallelRunner::RestoreFromCheckpoint() {
  if (resume_from_ == std::nullopt) return false;
  const CheckpointManifest& m = *resume_from_;
  const double start = run_watch_.ElapsedSeconds();

  // Table payloads: every partition table, then every message table still
  // pending at capture time. The dump stores the full schema (hidden AVG /
  // dirty columns included) and doubles as raw bit patterns, so the
  // restored tables are indistinguishable from the killed run's.
  for (size_t k = 0; k < partitions_; ++k) {
    master_.AddBatch("RESTORE TABLE " + translator_.Quote(PartitionTable(k)) +
                     " FROM " +
                     Value(m.partition_files[k]).ToSqlLiteral());
  }
  for (const auto& entry : m.messages) {
    master_.AddBatch("RESTORE TABLE " + translator_.Quote(entry.table) +
                     " FROM " + Value(entry.file).ToSqlLiteral());
    // Dumps carry rows, not indexes; re-create the target index every
    // registered message table has (RunCompute builds it on creation).
    master_.AddBatch("CREATE INDEX " + translator_.Quote(entry.table + "_t") +
                     " ON " + translator_.Quote(entry.table) +
                     " (target_pt)");
  }
  MasterExecuteBatch();

  // Registry state. Checkpointed indexes are relative to the tables still
  // alive at capture time (the dropped prefix is gone for good), so the
  // rebuilt registry starts at prefix 0.
  {
    const std::scoped_lock lock(registry_mutex_);
    message_tables_.clear();
    message_sources_.clear();
    message_targets_.clear();
    for (const auto& entry : m.messages) {
      message_tables_.push_back(entry.table);
      message_sources_.push_back(entry.source);
      message_targets_.push_back(entry.targets);
    }
    consumed_ = m.consumed;
    dropped_prefix_ = 0;
    message_seq_.store(m.message_seq);
  }

  // AsyncP priority + dispatch state, for bit-identical tie-breaking.
  if (m.priorities.size() == partitions_ &&
      m.priority_known.size() == partitions_) {
    const std::scoped_lock lock(priority_mutex_);
    priorities_ = m.priorities;
    for (size_t k = 0; k < partitions_; ++k) {
      priority_known_[k] = m.priority_known[k] != 0;
    }
  }
  resume_round_ = m.round;
  resume_dispatch_seq_ = m.dispatch_seq;
  if (m.last_dispatch.size() == partitions_) {
    resume_last_dispatch_ = m.last_dispatch;
  }
  stats_.resumed_from_round = m.round;
  SQLOOP_COUNT(recorder_, "checkpoint.restores", 1);
  SQLOOP_TELEMETRY(EmitSpan(telemetry::SpanKind::kRestore, -1, start,
                            run_watch_.ElapsedSeconds() - start, 0););
  return true;
}

void ParallelRunner::WriteCheckpoint(
    int64_t round, uint64_t dispatch_seq,
    const std::vector<uint64_t>& last_dispatch) {
  const double start = run_watch_.ElapsedSeconds();
  ckpt_->BeginRound(round);
  CheckpointManifest m;
  m.round = round;
  m.mode = ExecutionModeName(options_.mode);
  m.partitions = static_cast<int64_t>(partitions_);
  for (size_t k = 0; k < partitions_; ++k) {
    const std::string stem = "pt" + std::to_string(k) + ".dump";
    // O(1) unchanged-partition probe (see the single-thread runner): a
    // partition whose maintained checksum still matches the last sealed
    // dump republishes those bytes instead of re-serializing. Converged
    // partitions in Sync/AsyncP runs stop paying O(partition) per
    // checkpoint. Message tables stay on the fresh-dump path — their set
    // changes every round.
    const std::string probe_sql =
        "CHECKSUM TABLE " + translator_.Quote(PartitionTable(k));
    std::string checksum;
    retrier_.Run(master_, "master", -1, [&] {
      checksum = master_.ExecuteQuery(probe_sql).rows[0][1].as_text();
      return 0;
    });
    if (ckpt_->TryReuseDump(round, stem, checksum)) {
      ++stats_.checkpoint_dumps_reused;
      SQLOOP_COUNT(recorder_, "checkpoint.dumps_reused", 1);
    } else {
      master_.AddBatch("DUMP TABLE " + translator_.Quote(PartitionTable(k)) +
                       " TO " +
                       Value(ckpt_->FileFor(round, stem)).ToSqlLiteral());
      ckpt_->RecordDumpChecksum(round, stem, checksum);
    }
    m.partition_files.push_back(stem);
  }
  {
    const std::scoped_lock lock(registry_mutex_);
    for (size_t i = dropped_prefix_; i < message_tables_.size(); ++i) {
      CheckpointManifest::MessageEntry entry;
      entry.table = message_tables_[i];
      entry.file = "msg" + std::to_string(i - dropped_prefix_) + ".dump";
      entry.source = message_sources_[i];
      entry.targets = message_targets_[i];
      master_.AddBatch("DUMP TABLE " + translator_.Quote(entry.table) +
                       " TO " +
                       Value(ckpt_->FileFor(round, entry.file)).ToSqlLiteral());
      m.messages.push_back(std::move(entry));
    }
    // Rebase the per-partition watermarks against the dropped prefix: the
    // restored registry re-indexes the surviving tables from zero.
    m.consumed.reserve(partitions_);
    for (const size_t c : consumed_) m.consumed.push_back(c - dropped_prefix_);
    m.message_seq = message_seq_.load();
  }
  MasterExecuteBatch();
  {
    const std::scoped_lock lock(priority_mutex_);
    m.priorities = priorities_;
    m.priority_known.reserve(partitions_);
    for (size_t k = 0; k < partitions_; ++k) {
      m.priority_known.push_back(priority_known_[k] ? 1 : 0);
    }
  }
  m.dispatch_seq = dispatch_seq;
  m.last_dispatch = last_dispatch;
  ckpt_->Commit(std::move(m));
  ++stats_.checkpoints_written;
  stats_.checkpoints_verified = ckpt_->verified_count();
  SQLOOP_COUNT(recorder_, "checkpoint.writes", 1);
  SQLOOP_TELEMETRY(EmitSpan(telemetry::SpanKind::kCheckpoint, -1, start,
                            run_watch_.ElapsedSeconds() - start, 0););
}

void ParallelRunner::ScrubPartitions() {
  // Scrub BEFORE the checkpoint write at the same cadence point: a state
  // table that fails its content checksum must never be sealed into a
  // checkpoint. CHECK TABLE raises IntegrityError on a mismatch — fatal to
  // the retrier, so it surfaces straight to the repair ladder in
  // execute.cpp rather than being retried against the same corrupt rows.
  for (size_t k = 0; k < partitions_; ++k) {
    master_.AddBatch("CHECK TABLE " + translator_.Quote(PartitionTable(k)));
    if (k % 16 == 15) MasterExecuteBatch();
  }
  MasterExecuteBatch();
  ++stats_.scrub_passes;
  SQLOOP_COUNT(recorder_, "minidb.scrub_passes", 1);
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

void ParallelRunner::RefreshPriority(size_t partition, dbc::Connection& conn) {
  if (options_.priority_query.empty()) return;
  const double start = run_watch_.ElapsedSeconds();
  const std::string sql = ReplaceAll(options_.priority_query, "$PARTITION",
                                     PartitionTable(partition));
  std::optional<double> priority;
  const auto result = conn.ExecuteQuery(sql);
  if (!result.rows.empty() && !result.rows[0].empty() &&
      result.rows[0][0].is_numeric()) {
    const double v = result.rows[0][0].NumericAsDouble();
    if (std::isfinite(v)) priority = v;
  }
  {
    const std::scoped_lock lock(priority_mutex_);
    priorities_[partition] = priority;
    priority_known_[partition] = true;
  }
  SQLOOP_TELEMETRY(EmitSpan(telemetry::SpanKind::kPriority,
                            static_cast<int64_t>(partition), start,
                            run_watch_.ElapsedSeconds() - start, 0););
}

std::vector<size_t> ParallelRunner::PartitionOrderForRound() {
  std::vector<size_t> order;
  order.reserve(partitions_);
  if (options_.mode != ExecutionMode::kAsyncPriority ||
      options_.priority_query.empty()) {
    for (size_t k = 0; k < partitions_; ++k) order.push_back(k);
    return order;
  }

  struct Entry {
    size_t partition;
    double rank;  // already oriented so larger runs first
  };
  std::vector<Entry> entries;
  {
    const std::scoped_lock lock(priority_mutex_, registry_mutex_);
    for (size_t k = 0; k < partitions_; ++k) {
      const bool has_messages = HasUnreadTargetedMessages(k);
      if (!priority_known_[k]) {
        // Never measured: run it first.
        entries.push_back({k, std::numeric_limits<double>::infinity()});
        continue;
      }
      if (!priorities_[k].has_value()) {
        if (has_messages) {
          // No productive work of its own, but it must still consume
          // pending messages.
          entries.push_back({k, -std::numeric_limits<double>::infinity()});
        } else {
          stats_.skipped_tasks += 1;
        }
        continue;
      }
      const double v = *priorities_[k];
      entries.push_back({k, options_.priority_descending ? v : -v});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.rank > b.rank;
                   });
  for (const Entry& e : entries) order.push_back(e.partition);
  return order;
}

bool ParallelRunner::PartitionEligible(size_t partition, double* rank) {
  const std::scoped_lock lock(priority_mutex_, registry_mutex_);
  if (!priority_known_[partition]) {
    *rank = std::numeric_limits<double>::infinity();  // never measured
    return true;
  }
  const bool has_messages = [&] {
    for (size_t i = consumed_[partition]; i < message_tables_.size(); ++i) {
      const auto& targets = message_targets_[i];
      if (targets.empty() ||
          std::binary_search(targets.begin(), targets.end(), partition)) {
        return true;
      }
    }
    return false;
  }();
  if (priorities_[partition].has_value()) {
    const double v = *priorities_[partition];
    *rank = options_.priority_descending ? v : -v;
    return true;
  }
  if (has_messages) {
    *rank = -std::numeric_limits<double>::infinity();  // consume, low rank
    return true;
  }
  return false;
}

void ParallelRunner::RunRounds() {
  // Under a shared pool (service runs) the job gets the pool's width; its
  // per-worker connections are opened lazily by the first task that lands
  // on each worker (worker_conn below), since a shared pool's start hooks
  // already ran for some other purpose long ago.
  const int threads = shared_pool_ != nullptr
                          ? static_cast<int>(shared_pool_->worker_count())
                          : options_.ResolveThreads();
  std::vector<std::unique_ptr<dbc::Connection>> worker_conns(
      static_cast<size_t>(threads));
  worker_dead_.assign(static_cast<size_t>(threads), 0);
  {
    const std::scoped_lock lock(degrade_mutex_);
    live_workers_ = static_cast<size_t>(threads);
  }
  std::unique_ptr<ThreadPool> owned_pool;
  if (shared_pool_ == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(
        static_cast<size_t>(threads), [&](size_t index) {
          try {
            worker_conns[index] = dbc::DriverManager::GetConnection(url_);
            // Worker statements count toward the same run as the master's.
            worker_conns[index]->set_recorder(recorder_);
            worker_conns[index]->set_statement_timeout_ms(
                options_.retry.statement_timeout_ms);
            retrier_.ApplyGovernance(*worker_conns[index]);
          } catch (const std::exception& e) {
            if (IsTransientError(e)) return;  // first task re-attempts open
            const std::scoped_lock lock(failure_mutex_);
            if (!failure_) failure_ = std::current_exception();
          } catch (...) {
            const std::scoped_lock lock(failure_mutex_);
            if (!failure_) failure_ = std::current_exception();
          }
        });
  }
  // All submissions/barriers below go through the group: with a private
  // pool it is a transparent wrapper; with a shared pool its WaitIdle
  // waits only for THIS job's tasks, so concurrent jobs barrier
  // independently.
  TaskGroup pool(shared_pool_ != nullptr ? *shared_pool_ : *owned_pool);

  // However RunRounds exits, every worker connection is closed before the
  // pool unwinds — the failure path must not leak live connections until
  // some enclosing scope gets around to it. Declared after `pool` so it
  // runs first, and it drains the queue so no task can resurrect a
  // connection afterwards.
  struct WorkerConnCloser {
    TaskGroup& pool;
    std::vector<std::unique_ptr<dbc::Connection>>& conns;
    ~WorkerConnCloser() {
      pool.WaitIdle();
      for (auto& conn : conns) {
        if (conn && !conn->closed()) {
          try {
            conn->Close();
          } catch (...) {
            // Deterministic close is best-effort on the unwind path.
          }
        }
      }
    }
  } closer{pool, worker_conns};

  const auto poison = [&] {
    const std::scoped_lock lock(failure_mutex_);
    if (!failure_) failure_ = std::current_exception();
  };
  // Shared-pool mode has no per-job start hook, so the first task landing
  // on a worker opens its connection here. An initial open is not a
  // recovery action and must not count as a reopen; only genuinely lost
  // connections go through the retrier's counted path.
  const auto worker_conn = [&](size_t worker) -> dbc::Connection& {
    if (worker_conns[worker] == nullptr) {
      try {
        auto conn = dbc::DriverManager::GetConnection(url_);
        conn->set_recorder(recorder_);
        conn->set_statement_timeout_ms(options_.retry.statement_timeout_ms);
        retrier_.ApplyGovernance(*conn);
        worker_conns[worker] = std::move(conn);
        return *worker_conns[worker];
      } catch (const std::exception& e) {
        if (!IsTransientError(e)) throw;
        // Transient connect fault: fall through to the counted retry path.
      }
    }
    return retrier_.EnsureOpen(worker_conns[worker], url_);
  };
  const auto worker_retired = [&](size_t worker) {
    const std::scoped_lock lock(degrade_mutex_);
    return worker_dead_[worker] != 0;
  };
  // Rung 3 of the ladder: a worker that exhausted its retry budget is
  // retired — the pool shrinks and the worker's connection closes for good.
  const auto retire_worker = [&](size_t worker, const std::string& reason) {
    size_t remaining = 0;
    {
      const std::scoped_lock lock(degrade_mutex_);
      if (worker_dead_[worker]) return;
      worker_dead_[worker] = 1;
      remaining = --live_workers_;
    }
    workers_retired_.fetch_add(1);
    SQLOOP_COUNT(recorder_, "resilience.workers_retired", 1);
    if (worker_conns[worker] && !worker_conns[worker]->closed()) {
      try {
        worker_conns[worker]->Close();
      } catch (...) {
      }
    }
    if (observer_ != nullptr) {
      observer_->OnDegrade(
          {DegradeEvent::Kind::kWorkerRetired, remaining, reason});
    }
  };

  // --- straggler mitigation (DESIGN.md "Checkpointing & recovery") -------
  // A watchdog thread tracks in-flight tasks; one that exceeds
  // straggler_factor × the p95 of completed task durations is speculatively
  // re-executed on a spare connection. Exactly-once is preserved by
  // cooperative cancellation: the primary's connection refuses further
  // statements (TaskSupersededError fires before the engine sees them), the
  // watchdog waits until the primary has provably stopped, then runs only
  // the spec's remaining pieces. First finisher wins; the loser ran nothing.
  const bool speculate = options_.straggler_factor > 0 && threads > 1;
  struct SpecState {
    std::mutex mutex;
    std::condition_variable cv;
    TaskSpec spec;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    double started = 0;           // run_watch_ offset at primary start
    bool claimed = false;         // watchdog owns the remaining pieces
    bool primary_exited = false;  // primary provably runs no more statements
    bool done = false;            // spec fully finished (either side)
  };
  std::mutex watch_mutex;  // guards watchlist + samples; never nests inward
  std::vector<std::shared_ptr<SpecState>> watchlist;
  std::vector<double> task_samples;
  size_t sample_cursor = 0;
  constexpr size_t kMaxSamples = 256;
  constexpr size_t kMinSamples = 8;
  const auto record_sample = [&](double seconds) {
    const std::scoped_lock lock(watch_mutex);
    if (task_samples.size() < kMaxSamples) {
      task_samples.push_back(seconds);
    } else {
      task_samples[sample_cursor] = seconds;
      sample_cursor = (sample_cursor + 1) % kMaxSamples;
    }
  };
  const auto speculation_threshold = [&]() -> double {
    // Until enough samples exist the floor alone gates speculation, so a
    // slow warm-up round cannot trigger a storm of copies.
    const double floor_s =
        static_cast<double>(options_.straggler_min_ms) * 1e-3;
    std::vector<double> samples;
    {
      const std::scoped_lock lock(watch_mutex);
      samples = task_samples;
    }
    if (samples.size() < kMinSamples) return floor_s;
    size_t idx = (samples.size() * 95) / 100;
    if (idx >= samples.size()) idx = samples.size() - 1;
    std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
    return std::max(floor_s, options_.straggler_factor * samples[idx]);
  };

  // One spec on one worker thread. Transient faults retry inside RunSpec
  // (rungs 1-2: retry, reopen); budget exhaustion retires the worker and
  // forwards the spec's unfinished pieces to the master (rung 4); fatal
  // errors poison the run. A std::function so a task landing on a retired
  // worker can resubmit itself onto a surviving one.
  std::function<void(size_t, TaskSpec)> run_task = [&](size_t worker,
                                                       TaskSpec spec) {
    {
      const std::scoped_lock lock(failure_mutex_);
      if (failure_) return;
    }
    if (worker_retired(worker)) {
      // A retired worker's thread still drains the shared queue. Bounce
      // the task back so a surviving worker picks it up, instead of
      // pinning every such partition on the master; bounded bounces keep
      // a fully-dead pool draining deterministically via AbandonTask.
      size_t survivors = 0;
      {
        const std::scoped_lock lock(degrade_mutex_);
        survivors = live_workers_;
      }
      if (survivors > 0 && spec.bounces < 2 * threads) {
        if (spec.bounces == 0) {
          rebalanced_.fetch_add(1);
          SQLOOP_COUNT(recorder_, "resilience.tasks_rebalanced", 1);
        }
        ++spec.bounces;
        pool.Submit([&run_task, spec = std::move(spec)](size_t w) mutable {
          run_task(w, std::move(spec));
        });
      } else {
        AbandonTask(std::move(spec));
      }
      return;
    }
    if (!speculate) {
      try {
        dbc::Connection& conn = worker_conn(worker);
        RunSpec(conn, spec);
      } catch (const RetryExhausted& e) {
        if (options_.retry.allow_degradation) {
          retire_worker(worker, e.what());
          AbandonTask(std::move(spec));
        } else {
          poison();
        }
      } catch (...) {
        poison();
      }
      return;
    }

    // Speculative path: the spec's progress lives in shared state so the
    // watchdog can take over exactly the pieces the primary did not finish.
    auto state = std::make_shared<SpecState>();
    state->spec = std::move(spec);
    state->started = run_watch_.ElapsedSeconds();
    {
      const std::scoped_lock lock(watch_mutex);
      watchlist.push_back(state);
    }
    bool superseded = false;
    try {
      dbc::Connection& conn = worker_conn(worker);
      conn.set_cancel_flag(state->cancel);
      struct FlagClearer {
        dbc::Connection& conn;
        ~FlagClearer() { conn.set_cancel_flag(nullptr); }
      } clearer{conn};
      RunSpec(conn, state->spec);
      record_sample(run_watch_.ElapsedSeconds() - state->started);
    } catch (const TaskSupersededError&) {
      superseded = true;
    } catch (const RetryExhausted& e) {
      bool claimed = false;
      {
        const std::scoped_lock lock(state->mutex);
        claimed = state->claimed;
        if (!claimed) state->done = true;  // watchdog must not double-run
      }
      state->cv.notify_all();
      if (claimed) {
        // The watchdog already owns the leftovers; handing over instead of
        // abandoning keeps the spec from being run by two parties.
        superseded = true;
        if (options_.retry.allow_degradation) retire_worker(worker, e.what());
      } else if (options_.retry.allow_degradation) {
        retire_worker(worker, e.what());
        AbandonTask(std::move(state->spec));
        return;
      } else {
        poison();
        return;
      }
    } catch (...) {
      {
        const std::scoped_lock lock(state->mutex);
        state->primary_exited = true;
        state->done = true;  // fatal: the run is poisoned, nobody re-runs
      }
      state->cv.notify_all();
      poison();
      return;
    }
    if (superseded) {
      // Hand over and wait: the enclosing barrier / window treats this
      // task as complete only once its work is actually complete.
      std::unique_lock lock(state->mutex);
      state->primary_exited = true;
      state->cv.notify_all();
      state->cv.wait(lock, [&] { return state->done; });
      return;
    }
    {
      const std::scoped_lock lock(state->mutex);
      // Finished under the watchdog's nose (every piece was already in the
      // engine when the cancel landed): nothing is left to speculate on.
      if (state->claimed) state->primary_exited = true;
      state->done = true;
    }
    state->cv.notify_all();
  };

  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (speculate) {
    watchdog = std::thread([&] {
      std::unique_ptr<dbc::Connection> spare;
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::shared_ptr<SpecState> victim;
        const double now = run_watch_.ElapsedSeconds();
        const double threshold = speculation_threshold();
        {
          const std::scoped_lock lock(watch_mutex);
          watchlist.erase(
              std::remove_if(watchlist.begin(), watchlist.end(),
                             [](const std::shared_ptr<SpecState>& s) {
                               const std::scoped_lock inner(s->mutex);
                               return s->done;
                             }),
              watchlist.end());
          for (const auto& s : watchlist) {
            const std::scoped_lock inner(s->mutex);
            if (s->claimed || s->done) continue;
            if (now - s->started < threshold) continue;
            s->claimed = true;
            s->cancel->store(true, std::memory_order_release);
            victim = s;
            break;
          }
        }
        if (victim == nullptr) continue;
        speculative_tasks_.fetch_add(1);
        SQLOOP_COUNT(recorder_, "straggler.speculations", 1);
        {
          // The primary stops at its next cancellation point (statement
          // boundary or sliced injected sleep), so this wait is bounded.
          std::unique_lock lock(victim->mutex);
          victim->cv.wait(lock, [&] { return victim->primary_exited; });
        }
        bool nothing_left = false;
        {
          const std::scoped_lock lock(victim->mutex);
          nothing_left = victim->done || (!victim->spec.do_gather &&
                                          !victim->spec.do_compute &&
                                          victim->spec.refresh ==
                                              RefreshMode::kNone);
        }
        if (nothing_left) {
          speculative_losses_.fetch_add(1);
        } else {
          bool won = false;
          try {
            dbc::Connection& conn = retrier_.EnsureOpen(spare, url_);
            RunSpec(conn, victim->spec);
            won = true;
          } catch (const RetryExhausted&) {
            AbandonTask(victim->spec);  // master drains it at the border
          } catch (...) {
            poison();
          }
          if (won) {
            speculative_wins_.fetch_add(1);
            SQLOOP_COUNT(recorder_, "straggler.wins", 1);
          } else {
            speculative_losses_.fetch_add(1);
          }
        }
        {
          const std::scoped_lock lock(victim->mutex);
          victim->done = true;
        }
        victim->cv.notify_all();
      }
      if (spare != nullptr && !spare->closed()) {
        try {
          spare->Close();
        } catch (...) {
        }
      }
    });
  }
  // Joined before WorkerConnCloser runs (declared after it), while every
  // local the watchdog captures is still alive. The loop always completes
  // its current victim before observing the stop flag, so no primary is
  // left waiting on a handed-over spec.
  struct WatchdogJoiner {
    std::atomic<bool>& stop;
    std::thread& thread;
    ~WatchdogJoiner() {
      stop.store(true, std::memory_order_release);
      if (thread.joinable()) thread.join();
    }
  } watchdog_joiner{watchdog_stop, watchdog};

  const auto throw_if_failed = [&] {
    const std::scoped_lock lock(failure_mutex_);
    if (failure_) std::rethrow_exception(failure_);
  };

  const bool continuous_priority =
      options_.mode == ExecutionMode::kAsyncPriority &&
      !options_.priority_query.empty();

  // The delta snapshot repeats every round with fixed text: prepared once
  // on the master, executed per round. Worker-side repeated statements
  // (per-partition updates, priority probes, gather arms) instead share
  // the database's plan cache — the first worker to run a text compiles it
  // for every connection, which keeps handles off connections the
  // resilience ladder may retire or replace mid-run.
  std::vector<dbc::PreparedStatement> snapshot_stmts;
  if (checker_.needs_delta_snapshot()) {
    for (const auto& sql : checker_.SnapshotSql(schema_)) {
      snapshot_stmts.push_back(retrier_.Run(
          master_, "prepare", -1, [&] { return master_.Prepare(sql); }));
    }
  }

  // State for the continuous priority scheduler (paper §V-E: "instead of
  // scheduling ... in a round-robin fashion, the master thread maintains a
  // priority queue"). A "round" is a work window of `partitions_` completed
  // pair tasks — the budget an Async round would spend — so ITERATIONS
  // termination stays comparable across modes.
  std::mutex sched_mutex;
  std::condition_variable sched_cv;
  std::vector<char> running(partitions_, 0);
  std::vector<uint64_t> last_dispatch(partitions_, 0);
  uint64_t dispatch_seq = 0;
  size_t in_flight = 0;
  if (resume_round_ > 0 && resume_last_dispatch_.size() == partitions_) {
    // Restored AsyncP tie-breaking state: the first resumed window ranks
    // equal-priority partitions exactly as the killed run would have.
    last_dispatch = resume_last_dispatch_;
    dispatch_seq = resume_dispatch_seq_;
  }

  // One round's slot in the cross-job scheduler (service runs). EndRound
  // must fire on the unwind path too — a job that dies mid-round still has
  // to give its grant back or every other job would starve.
  struct RoundLease {
    RoundGate* gate;
    int64_t round;
    ~RoundLease() {
      if (gate != nullptr) gate->EndRound(round);
    }
  };

  for (int64_t round = resume_round_ + 1;; ++round) {
    // The gate may block (fair-share turn-taking) and may throw
    // JobCancelledError — the cooperative cancellation point at the round
    // border. Taken before any of the round's work, so a cancelled or
    // descheduled job holds no pool capacity while it waits.
    if (gate_ != nullptr) gate_->BeginRound(round);
    RoundLease lease{gate_, round};
    current_round_.store(round, std::memory_order_relaxed);
    round_degraded_ = false;
    if (observer_ != nullptr) observer_->OnRoundStart(round);
    if (const auto& fault = master_.fault_injector();
        fault != nullptr && fault->ShouldKillAtRound(round)) {
      // Simulated hard crash. Run() drops the in-database scratch state on
      // the way out (exactly what a process death forfeits); checkpoint
      // files survive on disk for a later `resume` run.
      throw JobKilledError("fault_kill_at_round fired at round " +
                           std::to_string(round));
    }
    const double round_start = run_watch_.ElapsedSeconds();
    double barrier_wait = 0;
    for (auto& stmt : snapshot_stmts) {
      retrier_.Run(master_, "master", -1, [&] {
        stmt.Execute();
        return 0;
      });
    }
    round_updates_.store(0);

    // Aggregate worker idle across one barriered phase: the pool has
    // `threads` workers for `wall` seconds; whatever they did not spend
    // inside tasks was spent waiting at the barrier. Abandoned tasks are
    // drained after the estimate so master takeover does not read as
    // barrier idleness.
    const auto barrier_phase = [&](auto submit_all) {
      const double phase_start = run_watch_.ElapsedSeconds();
      const uint64_t busy_before = compute_ns_.load() + gather_ns_.load();
      submit_all();
      pool.WaitIdle();
      throw_if_failed();
      const double wall = run_watch_.ElapsedSeconds() - phase_start;
      const double busy =
          static_cast<double>(compute_ns_.load() + gather_ns_.load() -
                              busy_before) *
          1e-9;
      barrier_wait += std::max(0.0, wall * threads - busy);
      DrainAbandoned();
    };

    if (options_.mode == ExecutionMode::kSync) {
      // Two-phase with explicit barriers (paper §V-E, Fig. 3 top).
      barrier_phase([&] {
        for (size_t k = 0; k < partitions_; ++k) {
          pool.Submit([&run_task, k](size_t worker) {
            TaskSpec spec;
            spec.partition = k;
            spec.do_compute = true;
            run_task(worker, std::move(spec));
          });
        }
      });
      barrier_phase([&] {
        for (size_t k = 0; k < partitions_; ++k) {
          pool.Submit([&run_task, k](size_t worker) {
            TaskSpec spec;
            spec.partition = k;
            spec.do_gather = true;
            run_task(worker, std::move(spec));
          });
        }
      });
    } else if (!continuous_priority) {
      // Async: Gather then Compute per partition, no barrier between
      // partitions (paper §V-E, Fig. 3 bottom).
      const RefreshMode refresh = options_.mode == ExecutionMode::kAsyncPriority
                                      ? RefreshMode::kAlways
                                      : RefreshMode::kNone;
      for (const size_t k : PartitionOrderForRound()) {
        pool.Submit([&run_task, k, refresh](size_t worker) {
          TaskSpec spec;
          spec.partition = k;
          spec.do_gather = true;
          spec.do_compute = true;
          spec.refresh = refresh;
          run_task(worker, std::move(spec));
        });
      }
      pool.WaitIdle();
      throw_if_failed();
      DrainAbandoned();
    } else {
      // AsyncP: continuously dispatch the highest-priority eligible
      // partition, keeping at most `threads` tasks in flight so every
      // dispatch decision sees fresh priorities. The same partition may
      // run several times within a window while unproductive ones are
      // never scheduled.
      size_t window_dispatched = 0;
      bool starved = false;
      while (window_dispatched < partitions_) {
        {
          // Dispatch-on-demand: wait for a free worker slot.
          std::unique_lock lock(sched_mutex);
          if (in_flight >= static_cast<size_t>(threads)) {
            sched_cv.wait(lock, [&] {
              return in_flight < static_cast<size_t>(threads);
            });
          }
        }
        int best = -1;
        double best_rank = 0;
        {
          // Highest rank wins; ties go to the least-recently-dispatched
          // partition so equal-priority work (e.g. message consumption)
          // is served fairly instead of starving high partition ids.
          const std::scoped_lock lock(sched_mutex);
          for (size_t k = 0; k < partitions_; ++k) {
            if (running[k]) continue;
            double rank;
            if (!PartitionEligible(k, &rank)) continue;
            if (best < 0 || rank > best_rank ||
                (rank == best_rank &&
                 last_dispatch[k] < last_dispatch[static_cast<size_t>(best)])) {
              best = static_cast<int>(k);
              best_rank = rank;
            }
          }
        }
        if (best < 0) {
          std::unique_lock lock(sched_mutex);
          if (in_flight > 0) {
            // In-flight work may enable new partitions; wait and re-scan.
            const size_t snapshot = in_flight;
            sched_cv.wait(lock, [&] { return in_flight < snapshot; });
            continue;
          }
          starved = true;  // nothing eligible at all
          break;
        }
        {
          const std::scoped_lock lock(sched_mutex);
          running[static_cast<size_t>(best)] = 1;
          last_dispatch[static_cast<size_t>(best)] = ++dispatch_seq;
          ++in_flight;
          ++window_dispatched;
        }
        if (kSchedulerTrace) {
          std::fprintf(stderr, "sqloop-sched: dispatch pt%d rank=%g\n", best,
                       best_rank);
        }
        const size_t k = static_cast<size_t>(best);
        pool.Submit([&run_task, k, &sched_mutex, &sched_cv, &running,
                     &in_flight](size_t worker) {
          // kIfProductive: an unchanged partition keeps its previous
          // priority; only re-measure when the pair actually moved data.
          TaskSpec spec;
          spec.partition = k;
          spec.do_gather = true;
          spec.do_compute = true;
          spec.refresh = RefreshMode::kIfProductive;
          run_task(worker, std::move(spec));
          const std::scoped_lock lock(sched_mutex);
          running[k] = 0;
          --in_flight;
          sched_cv.notify_all();
        });
      }
      {
        std::unique_lock lock(sched_mutex);
        sched_cv.wait(lock, [&] { return in_flight == 0; });
      }
      throw_if_failed();
      // Drain before the starvation check: an abandoned pair the master
      // re-runs may still produce updates this window.
      DrainAbandoned();
      // Account partitions with no productive work as skipped (§V-E).
      for (size_t k = 0; k < partitions_; ++k) {
        double rank;
        if (!PartitionEligible(k, &rank)) ++stats_.skipped_tasks;
      }
      if (kSchedulerTrace) {
        std::fprintf(stderr,
                     "sqloop-sched: window %lld dispatched=%zu updates=%llu "
                     "starved=%d\n",
                     static_cast<long long>(round), window_dispatched,
                     static_cast<unsigned long long>(round_updates_.load()),
                     static_cast<int>(starved));
      }
      if (starved && round_updates_.load() == 0) {
        // Nothing can make progress anymore: quiesced. Check Tc once and
        // stop either way — further windows would be identical no-ops.
        DropFullyConsumedMessages();
        stats_.iterations = round;
        FinishRound(round, 0, round_start, barrier_wait);
        retrier_.Run(master_, "termination", -1,
                     [&] { return checker_.Satisfied(master_, round, 0); });
        break;
      }
    }

    DropFullyConsumedMessages();
    stats_.iterations = round;
    const uint64_t updates = round_updates_.load();
    stats_.total_updates += updates;
    FinishRound(round, updates, round_start, barrier_wait);
    // A zero-update window is genuine quiescence: the fair tie-breaking
    // above guarantees every pending message is consumed within a window,
    // so anything still unread is an idempotent re-send.
    const bool satisfied = retrier_.Run(master_, "termination", -1, [&] {
      return checker_.Satisfied(master_, round, updates);
    });
    if (satisfied) break;
    if (options_.scrub_every > 0 && round % options_.scrub_every == 0) {
      ScrubPartitions();
    }
    if (ckpt_ != nullptr && round % options_.checkpoint_every == 0) {
      WriteCheckpoint(round, dispatch_seq, last_dispatch);
    }
    if (round >= options_.max_iterations_guard) {
      throw ExecutionError("iterative CTE '" + with_.name +
                           "' did not satisfy its UNTIL condition within " +
                           std::to_string(options_.max_iterations_guard) +
                           " rounds");
    }
  }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void ParallelRunner::Cleanup() {
  // Cleanup runs precisely when the job may have been cancelled, and the
  // dbc layer rejects every statement while a cancel token is armed —
  // detach it so the drops (cheap, bounded DDL) can land; the caller's
  // TimeoutGuard re-attaches the original token after Run unwinds.
  const CancelToken* const armed_token = master_.cancel_token();
  master_.set_cancel_token(nullptr);
  try {
    // The run may have ended with the master connection dropped by a
    // fault; cleanup needs a live connection or nothing below can work.
    if (master_.closed()) master_.Reopen();
    master_.Execute("DROP VIEW IF EXISTS " + translator_.Quote(base_));
    for (size_t k = 0; k < partitions_; ++k) {
      master_.AddBatch(translator_.DropTableSql(PartitionTable(k)));
      master_.AddBatch(translator_.DropTableSql(MjoinTable(k)));
    }
    master_.AddBatch(translator_.DropTableSql(base_ + "_seed"));
    master_.AddBatch(translator_.DropTableSql(base_ + "_delta"));
    {
      const std::scoped_lock lock(registry_mutex_);
      for (size_t i = dropped_prefix_; i < message_tables_.size(); ++i) {
        master_.AddBatch(translator_.DropTableSql(message_tables_[i]));
      }
      dropped_prefix_ = message_tables_.size();
      // Created-but-unregistered message tables: a fatal error (cancel,
      // quota kill) aborted their task before the retry path could drop
      // them. Left behind they would collide with a resumed incarnation
      // re-allocating the same seq from the checkpointed counter.
      for (const auto& orphan : pending_orphans_) {
        master_.AddBatch(translator_.DropTableSql(orphan));
      }
      pending_orphans_.clear();
    }
    master_.ExecuteBatch();
  } catch (...) {
    // Cleanup is best-effort; the original error (if any) matters more.
  }
  master_.set_cancel_token(armed_token);
}

dbc::ResultSet ParallelRunner::Run() {
  const Stopwatch watch;
  // The caller owns the master connection; apply the run's statement
  // timeout and governance hooks for the duration of the run and restore
  // the old values after.
  struct TimeoutGuard {
    dbc::Connection& conn;
    int64_t saved;
    const CancelToken* saved_token;
    MemoryTracker* saved_tracker;
    int64_t saved_check_rows;
    ~TimeoutGuard() {
      conn.set_statement_timeout_ms(saved);
      conn.set_cancel_token(saved_token);
      conn.set_memory_tracker(saved_tracker);
      conn.set_cancel_check_rows(saved_check_rows);
    }
  } timeout_guard{master_, master_.statement_timeout_ms(),
                  master_.cancel_token(), master_.active_memory_tracker(),
                  master_.cancel_check_rows()};
  master_.set_statement_timeout_ms(options_.retry.statement_timeout_ms);
  retrier_.ApplyGovernance(master_);
  try {
    const double setup_start = run_watch_.ElapsedSeconds();
    SetupCheckpointing();
    DropLeftovers();
    if (!RestoreFromCheckpoint()) CreatePartitions();
    CreateUnionView();
    MaterializeConstantJoins();
    BuildTaskSql();
    SQLOOP_TELEMETRY(EmitSpan(telemetry::SpanKind::kSetup, -1, setup_start,
                              run_watch_.ElapsedSeconds() - setup_start, 0););
    RunRounds();

    const double final_start = run_watch_.ElapsedSeconds();
    dbc::ResultSet result = retrier_.Run(master_, "final", -1, [&] {
      return master_.ExecuteQuery(translator_.Render(*with_.final_query));
    });
    SQLOOP_TELEMETRY(EmitSpan(telemetry::SpanKind::kFinal, -1, final_start,
                              run_watch_.ElapsedSeconds() - final_start, 0););

    stats_.mode_used = options_.mode;
    stats_.parallelized = true;
    stats_.compute_tasks = compute_tasks_.load();
    stats_.gather_tasks = gather_tasks_.load();
    stats_.message_tables = message_count_.load();
    stats_.seconds = watch.ElapsedSeconds();

    if (options_.keep_result_tables) {
      // Keep the view + partitions for post-run sampling, but clear the
      // transient message tables and the constant-join materialization.
      for (size_t k = 0; k < partitions_; ++k) {
        master_.AddBatch(translator_.DropTableSql(MjoinTable(k)));
      }
      const std::scoped_lock lock(registry_mutex_);
      for (size_t i = dropped_prefix_; i < message_tables_.size(); ++i) {
        master_.AddBatch(translator_.DropTableSql(message_tables_[i]));
      }
      dropped_prefix_ = message_tables_.size();
      MasterExecuteBatch();
    } else {
      Cleanup();
    }
    FlushResilienceStats();
    return result;
  } catch (...) {
    FlushResilienceStats();  // partial counters still tell the story
    Cleanup();
    throw;
  }
}

}  // namespace sqloop::core
