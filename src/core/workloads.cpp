#include "core/workloads.h"

namespace sqloop::core::workloads {
namespace {

/// The node universe both examples use: every id appearing in the edge
/// table as a source or destination.
constexpr const char* kAllNodes =
    "(SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges";

}  // namespace

std::string PageRankQuery(int64_t iterations) {
  // Example 2, verbatim modulo the iteration count.
  return "WITH ITERATIVE PageRank (Node, Rank, Delta) AS ("
         " SELECT src, 0, 0.15 FROM " + std::string(kAllNodes) +
         " GROUP BY src"
         " ITERATE"
         " SELECT PageRank.Node,"
         "  COALESCE(PageRank.Rank + PageRank.Delta, 0.15),"
         "  COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight),"
         "           0.0)"
         " FROM PageRank"
         " LEFT JOIN edges AS IncomingEdges"
         "   ON PageRank.Node = IncomingEdges.dst"
         " LEFT JOIN PageRank AS IncomingRank"
         "   ON IncomingRank.Node = IncomingEdges.src"
         " GROUP BY PageRank.Node"
         " UNTIL " + std::to_string(iterations) + " ITERATIONS"
         ") SELECT Node, Rank FROM PageRank";
}

namespace {

// Example 3's iterative member. The paper's listing reads
// `MIN(Neighbor.Distance + ...)`, but under iterate-then-merge semantics
// the seeded Delta would never reach Distance and nothing would propagate;
// using Delta alone oscillates on cycles. The propagating, monotone form
// is the neighbor's best-known distance LEAST(Distance, Delta) — see
// DESIGN.md "Execution-model notes".
std::string SsspCte(int64_t source, const std::string& until) {
  return "WITH ITERATIVE sssp (Node, Distance, Delta) AS ("
         " SELECT src, Infinity,"
         "  CASE WHEN src = " + std::to_string(source) +
         "   THEN 0 ELSE Infinity END"
         " FROM " + std::string(kAllNodes) +
         " GROUP BY src"
         " ITERATE"
         " SELECT sssp.Node,"
         "  LEAST(sssp.Distance, sssp.Delta),"
         "  COALESCE(MIN(LEAST(Neighbor.Distance, Neighbor.Delta)"
         "      + IncomingEdges.weight), Infinity)"
         " FROM sssp"
         " LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst"
         " LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src"
         " WHERE Neighbor.Delta != Infinity"
         " GROUP BY sssp.Node"
         " UNTIL " + until + ")";
}

}  // namespace

std::string SsspQuery(int64_t source, int64_t destination) {
  return SsspCte(source, "0 UPDATES") +
         " SELECT sssp.Distance FROM sssp WHERE sssp.Node = " +
         std::to_string(destination);
}

std::string SsspAllQuery(int64_t source) {
  return SsspCte(source, "0 UPDATES") +
         " SELECT Node, LEAST(Distance, Delta) FROM sssp"
         " WHERE LEAST(Distance, Delta) < Infinity";
}

namespace {

std::string DescendantCte(int64_t source, const std::string& until) {
  // Hop counts: every edge is one click (§VI-A: "the number of clicks the
  // user needs to make to go from a given web-page to any other").
  return "WITH ITERATIVE dq (Node, Hops, Delta) AS ("
         " SELECT src, Infinity,"
         "  CASE WHEN src = " + std::to_string(source) +
         "   THEN 0 ELSE Infinity END"
         " FROM " + std::string(kAllNodes) +
         " GROUP BY src"
         " ITERATE"
         " SELECT dq.Node,"
         "  LEAST(dq.Hops, dq.Delta),"
         "  COALESCE(MIN(LEAST(Neighbor.Hops, Neighbor.Delta) + 1), Infinity)"
         " FROM dq"
         " LEFT JOIN edges AS IncomingEdges ON dq.Node = IncomingEdges.dst"
         " LEFT JOIN dq AS Neighbor ON Neighbor.Node = IncomingEdges.src"
         " WHERE Neighbor.Delta != Infinity"
         " GROUP BY dq.Node"
         " UNTIL " + until + ")";
}

}  // namespace

std::string DescendantQuery(int64_t source) {
  return DescendantCte(source, "0 UPDATES") +
         " SELECT Node, LEAST(Hops, Delta) FROM dq"
         " WHERE LEAST(Hops, Delta) < Infinity";
}

std::string DescendantQueryBounded(int64_t source, int64_t max_hops) {
  return DescendantCte(source, std::to_string(max_hops) + " ITERATIONS") +
         " SELECT Node, LEAST(Hops, Delta) FROM dq"
         " WHERE LEAST(Hops, Delta) < Infinity";
}

std::string ConnectedComponentsQuery() {
  // Comp absorbs the best (smallest) label seen; Delta accumulates the
  // minimum label offered by any neighbour. Quiescence = every component
  // has agreed on its minimum node id.
  return "WITH ITERATIVE cc (Node, Comp, Delta) AS ("
         " SELECT src, src, src"
         " FROM (SELECT src FROM edges_sym UNION"
         "       SELECT dst FROM edges_sym) AS alln"
         " GROUP BY src"
         " ITERATE"
         " SELECT cc.Node,"
         "  LEAST(cc.Comp, cc.Delta),"
         "  COALESCE(MIN(LEAST(Neighbor.Comp, Neighbor.Delta)), Infinity)"
         " FROM cc"
         " LEFT JOIN edges_sym AS IncomingEdges"
         "   ON cc.Node = IncomingEdges.dst"
         " LEFT JOIN cc AS Neighbor ON Neighbor.Node = IncomingEdges.src"
         " GROUP BY cc.Node"
         " UNTIL 0 UPDATES"
         ") SELECT Node, LEAST(Comp, Delta) FROM cc";
}

std::string PageRankPriorityQuery() {
  return "SELECT SUM(ABS(Delta)) FROM $PARTITION";
}

std::string SsspPriorityQuery() {
  // A node represents pending work only while its freshly gathered Delta
  // would still improve its Distance; converged partitions report NULL and
  // become skippable (paper §V-E).
  return "SELECT MIN(Delta) FROM $PARTITION WHERE Delta < Distance";
}

std::string DqPriorityQuery() {
  return "SELECT MIN(Delta) FROM $PARTITION WHERE Delta < Hops";
}

}  // namespace sqloop::core::workloads
