#include "core/execute.h"

#include "common/error.h"
#include "common/logging.h"
#include "core/analysis.h"
#include "core/parallel.h"
#include "core/resilience.h"
#include "core/schema_infer.h"
#include "core/single_thread.h"
#include "core/translator.h"
#include "dbc/driver.h"
#include "telemetry/hooks.h"

namespace sqloop::core {
namespace {

dbc::ResultSet RunIterativeOnce(const std::string& url,
                                dbc::Connection& master,
                                const sql::WithClause& with,
                                const SqloopOptions& effective,
                                const ExecutionContext& ctx) {
  RunStats& stats = ctx.stats;
  const ExecutionContext run_ctx{effective,    stats,      ctx.recorder,
                                 ctx.observer, ctx.gate,   ctx.shared_pool,
                                 ctx.cancel,   ctx.memory};

  const auto fall_back = [&](const std::string& reason) {
    stats.fallback_reason = reason;
    if (ctx.observer != nullptr) ctx.observer->OnFallback(reason);
    return RunIterativeSingleThread(master, with, run_ctx);
  };

  if (effective.mode == ExecutionMode::kSingleThread) {
    stats.fallback_reason = "single-thread mode requested";
    return RunIterativeSingleThread(master, with, run_ctx);
  }

  // Automatic analysis (paper §V-A): parallelize when the iterative member
  // uses a supported aggregate and fits the partitionable shape.
  const CteAnalysis analysis = AnalyzeIterativeCte(with);
  if (!analysis.parallelizable) {
    SQLOOP_INFO("falling back to single-threaded execution: "
                << analysis.reason);
    return fall_back(analysis.reason);
  }

  const Translator translator = Translator::For(master);
  // Schema inference runs before the runner's own retry machinery exists;
  // a transient fault here must not abort the run.
  Retrier setup_retrier(effective.retry, ctx.recorder, ctx.observer);
  auto schema = setup_retrier.Run(master, "setup", -1, [&] {
    return InferSchemaFromSelect(master, translator, *with.seed, with.columns,
                                 /*widen_non_key=*/true);
  });
  stats.retries += setup_retrier.retries();
  stats.reopened_connections += setup_retrier.reopened_connections();
  stats.timeouts += setup_retrier.timeouts();
  if (schema.empty() || schema[0].type != ValueType::kInt64) {
    const std::string reason =
        "the key column is not integer-typed; hash partitioning on Rid "
        "requires integer keys";
    SQLOOP_INFO("falling back to single-threaded execution: " << reason);
    return fall_back(reason);
  }

  ParallelRunner runner(url, master, with, analysis, std::move(schema),
                        run_ctx);
  return runner.Run();
}

dbc::ResultSet RunIterative(const std::string& url, dbc::Connection& master,
                            const sql::WithClause& with,
                            const ExecutionContext& ctx) {
  // Durability defaults carried by the connection URL (checkpoint_every /
  // checkpoint_dir / checkpoint_keep / verify_checkpoints / scrub_every)
  // apply when the per-call options leave them unset, so a deployment can
  // turn on durability without touching call sites.
  SqloopOptions effective = ctx.options;
  try {
    const auto config = dbc::ConnectionConfig::Parse(url);
    if (effective.checkpoint_every == 0) {
      effective.checkpoint_every = config.checkpoint_every;
    }
    if (effective.checkpoint_dir.empty()) {
      effective.checkpoint_dir = config.checkpoint_dir;
    }
    if (effective.checkpoint_keep == 0) {
      effective.checkpoint_keep = config.checkpoint_keep;
    }
    if (!effective.verify_checkpoints) {
      effective.verify_checkpoints = config.verify_checkpoints;
    }
    if (effective.scrub_every == 0) {
      effective.scrub_every = config.scrub_every;
    }
  } catch (...) {
    // The URL already opened this run's connection; a re-parse failure
    // here only forfeits the URL defaults.
  }

  RunStats& stats = ctx.stats;

  // The repair ladder: corruption detected mid-job (a scrub mismatch, a
  // quarantined-table access) restarts the job from its newest valid
  // checkpoint instead of surfacing a wrong — or no — answer. Bounded
  // attempts; checkpoints written before the corrupt round still validate,
  // so the retried run resumes bit-identically from pre-corruption state
  // (or from scratch when no checkpoint survives, which is still correct).
  constexpr int kMaxRepairAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    try {
      dbc::ResultSet result =
          RunIterativeOnce(url, master, with, effective, ctx);
      if (stats.resumed_from_round > 0) {
        SQLOOP_COUNT(ctx.recorder, "durability.crash_points_survived", 1);
      }
      return result;
    } catch (const IntegrityError& e) {
      if (!effective.scrub_repair || attempt + 1 >= kMaxRepairAttempts) {
        throw;
      }
      // The violation may have struck mid-batch (a scrub pass batches its
      // CHECK TABLE statements); drain the abandoned queue so the repair
      // run's first batch doesn't replay stale statements against the
      // still-quarantined table.
      master.ClearBatch();
      SQLOOP_INFO("integrity violation mid-job ("
                  << e.what() << "); repairing from the newest valid "
                  << "checkpoint (attempt " << attempt + 1 << ")");
      effective.resume = true;
      ++stats.integrity_repairs;
      SQLOOP_COUNT(ctx.recorder, "durability.integrity_repairs", 1);
    }
  }
}

}  // namespace

bool NeedsIterativeRun(const sql::Statement& stmt,
                       const dbc::Connection& conn) {
  if (stmt.kind != sql::StatementKind::kWith) return false;
  switch (stmt.with.kind) {
    case sql::CteKind::kPlain:
      return false;
    case sql::CteKind::kRecursive:
      return !conn.profile().supports_recursive_cte;
    case sql::CteKind::kIterative:
      return true;
  }
  return false;
}

dbc::ResultSet RunStatement(const std::string& url, dbc::Connection& master,
                            const sql::Statement& stmt,
                            const ExecutionContext& ctx) {
  const Translator translator = Translator::For(master);

  if (stmt.kind != sql::StatementKind::kWith) {
    // Regular SQL: rewritten by the translation module for the target
    // dialect and forwarded as-is (paper §IV-B).
    return master.Execute(translator.Render(stmt));
  }

  switch (stmt.with.kind) {
    case sql::CteKind::kPlain:
      return master.Execute(translator.Render(stmt));
    case sql::CteKind::kRecursive: {
      if (master.profile().supports_recursive_cte) {
        return master.Execute(translator.Render(stmt));
      }
      SQLOOP_INFO("engine '" << master.profile().name
                             << "' lacks recursive CTEs; emulating");
      return RunRecursiveEmulated(master, stmt.with, ctx);
    }
    case sql::CteKind::kIterative:
      return RunIterative(url, master, stmt.with, ctx);
  }
  throw UsageError("unknown CTE kind");
}

}  // namespace sqloop::core
