// The resilience engine: retry-with-backoff around every statement the
// runners issue, connection reopening, and the bookkeeping the degradation
// ladder builds on (see DESIGN.md "Failure model & resilience").
//
// The Retrier only ever retries *transient* errors (IsTransientError);
// fatal errors pass straight through. Retrying is safe because faults are
// injected before a statement reaches the engine (fault.h): a failed
// operation provably did not happen, so re-running the caller's closure
// cannot double-apply work — callers whose closures span several
// statements keep their own progress state (see ComputeAttempt in
// parallel.cpp) so completed pieces are not repeated.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "core/observer.h"
#include "core/options.h"
#include "dbc/connection.h"
#include "telemetry/recorder.h"

namespace sqloop::core {

/// A transient failure survived RetryPolicy::max_attempts attempts. Fatal:
/// the ladder above (worker retirement / master takeover) decides whether
/// the run can still continue.
class RetryExhausted : public Error {
 public:
  RetryExhausted(int attempts, const std::string& last_error)
      : Error("retry budget exhausted after " + std::to_string(attempts) +
              " attempts; last error: " + last_error) {}
};

/// Thread-safe retry executor shared by one run's master and workers.
/// Counts retries/reopens/timeouts for RunStats and mirrors them into the
/// telemetry recorder.
class Retrier {
 public:
  Retrier(const RetryPolicy& policy, telemetry::Recorder* recorder,
          ExecutionObserver* observer);

  /// Runs `fn` with up to policy.max_attempts attempts. Before each
  /// attempt a closed `conn` (dropped by a fault, or closed by a previous
  /// failed attempt) is reopened in place. Transient errors back off and
  /// retry; fatal errors and budget exhaustion (RetryExhausted) propagate.
  /// `what`/`partition` label telemetry and observer events.
  template <typename Fn>
  auto Run(dbc::Connection& conn, const char* what, int64_t partition,
           Fn&& fn) {
    for (int attempt = 1;; ++attempt) {
      try {
        if (conn.closed()) Reopen(conn, what, partition, attempt);
        return fn();
      } catch (const std::exception& e) {
        HandleFailure(e, what, partition, attempt);
      }
    }
  }

  /// Opens (or re-opens) the connection slot for `url`, retrying transient
  /// open failures under the same policy. Applies the policy's statement
  /// timeout and the run's recorder to the fresh connection.
  dbc::Connection& EnsureOpen(std::unique_ptr<dbc::Connection>& slot,
                              const std::string& url);

  /// Opens a brand-new connection for `url`, retrying transient failures
  /// under the policy. Unlike EnsureOpen, a successful first open is NOT
  /// counted as a reopen — this is the initial open of a run, not a
  /// recovery action — so fault-free runs keep all-zero counters.
  std::unique_ptr<dbc::Connection> Open(const std::string& url);

  const RetryPolicy& policy() const noexcept { return policy_; }

  // --- resource governance ----------------------------------------------
  /// Governance hooks applied to every connection this retrier opens (and
  /// to connections the runner registers via ApplyGovernance): the cancel
  /// token preempts statements pre- and mid-execution, the tracker scopes
  /// transient-memory charges to the job budget, and a positive
  /// check-rows overrides the engine's governor interval. Null/0 disable.
  void set_cancel_token(const CancelToken* token) noexcept { token_ = token; }
  void set_memory_tracker(MemoryTracker* tracker) noexcept {
    memory_ = tracker;
  }
  void set_cancel_check_rows(int64_t rows) noexcept { check_rows_ = rows; }

  /// Attaches the configured governance hooks to a connection the caller
  /// opened outside Open/EnsureOpen (e.g. a lent master connection).
  void ApplyGovernance(dbc::Connection& conn) const noexcept {
    if (token_ != nullptr) conn.set_cancel_token(token_);
    if (memory_ != nullptr) conn.set_memory_tracker(memory_);
    if (check_rows_ > 0) conn.set_cancel_check_rows(check_rows_);
  }

  // --- counters (flushed into RunStats by the runner) -------------------
  uint64_t retries() const noexcept { return retries_.load(); }
  uint64_t reopened_connections() const noexcept { return reopens_.load(); }
  uint64_t timeouts() const noexcept { return timeouts_.load(); }

 private:
  /// Classifies the failure; returns normally iff the caller should try
  /// again (after this method slept the backoff).
  void HandleFailure(const std::exception& error, const char* what,
                     int64_t partition, int attempt);
  void Reopen(dbc::Connection& conn, const char* what, int64_t partition,
              int attempt);
  int64_t NextBackoffMs(int attempt);
  void NoteRetry(const char* what, int64_t partition, int attempt,
                 int64_t backoff_ms, const std::string& error);

  const RetryPolicy policy_;
  telemetry::Recorder* recorder_;
  ExecutionObserver* observer_;
  const CancelToken* token_ = nullptr;
  MemoryTracker* memory_ = nullptr;
  int64_t check_rows_ = 0;
  std::mutex jitter_mutex_;
  Rng jitter_rng_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> reopens_{0};
  std::atomic<uint64_t> timeouts_{0};
};

}  // namespace sqloop::core
