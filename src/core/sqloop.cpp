#include "core/sqloop.h"

#include "common/error.h"
#include "common/memory_tracker.h"
#include "core/execute.h"
#include "core/translator.h"
#include "dbc/driver.h"
#include "server/job_server.h"
#include "sql/parser.h"

namespace sqloop::core {

const char* ExecutionModeName(ExecutionMode mode) noexcept {
  switch (mode) {
    case ExecutionMode::kSingleThread:
      return "single-thread";
    case ExecutionMode::kSync:
      return "sync";
    case ExecutionMode::kAsync:
      return "async";
    case ExecutionMode::kAsyncPriority:
      return "async-priority";
  }
  return "?";
}

SqLoop::SqLoop(std::string url, SqloopOptions options)
    : url_(std::move(url)),
      options_(options),
      master_(dbc::DriverManager::GetConnection(url_)) {}

SqLoop::~SqLoop() = default;

dbc::ResultSet SqLoop::Execute(const std::string& sql) {
  return Execute(sql, options_);
}

dbc::ResultSet SqLoop::Execute(const std::string& sql,
                               const SqloopOptions& options) {
  const auto stmt = sql::ParseStatement(sql);
  return ExecuteStatement(*stmt, options);
}

dbc::ResultSet SqLoop::ExecuteScript(const std::string& script) {
  const auto statements = sql::ParseScript(script);
  dbc::ResultSet last;
  for (const auto& stmt : statements) {
    last = ExecuteStatement(*stmt, options_);
  }
  return last;
}

server::JobServer& SqLoop::job_server() {
  if (server_ == nullptr) {
    // Embedded single-job configuration: one dispatcher, no shared pool
    // (each run builds its private pool exactly like a standalone run),
    // no derived seeds and no pooled connections — legacy single-job
    // behaviour, fault schedules and connection accounting stay
    // bit-identical to the pre-service facade.
    server::JobServerConfig config;
    config.url = url_;
    config.share_worker_pool = false;
    config.max_running_jobs = 1;
    config.max_active_rounds = 0;
    config.queue_capacity = 64;
    config.max_inflight_per_tenant = 64;
    config.derive_seeds = false;
    config.pool_connections = false;
    server_ = std::make_unique<server::JobServer>(std::move(config));
  }
  return *server_;
}

dbc::ResultSet SqLoop::ExecuteStatement(const sql::Statement& stmt,
                                        const SqloopOptions& options) {
  if (!NeedsIterativeRun(stmt, *master_)) {
    // Regular SQL (and natively supported CTEs) stays on this instance's
    // own master connection — inside its transaction, if one is open.
    // The facade-level governance knobs still apply: a statement budget
    // wraps the connection's active tracker for exactly this statement.
    struct GovernanceGuard {
      dbc::Connection& conn;
      MemoryTracker* saved_tracker;
      int64_t saved_check_rows;
      ~GovernanceGuard() {
        conn.set_memory_tracker(saved_tracker);
        conn.set_cancel_check_rows(saved_check_rows);
      }
    } guard{*master_, master_->active_memory_tracker(),
            master_->cancel_check_rows()};
    MemoryTracker statement_budget("statement", guard.saved_tracker,
                                   options.memory_limit_bytes);
    if (options.memory_limit_bytes > 0) {
      master_->set_memory_tracker(&statement_budget);
    }
    if (options.cancel_check_rows > 0) {
      master_->set_cancel_check_rows(options.cancel_check_rows);
    }
    const Translator translator = Translator::For(*master_);
    return master_->Execute(translator.Render(stmt));
  }
  return ExecuteViaServer(stmt, options);
}

dbc::ResultSet SqLoop::ExecuteViaServer(const sql::Statement& stmt,
                                        const SqloopOptions& options) {
  // The facade lends its master connection: the run executes on it (same
  // transaction state, same connection accounting as the pre-service
  // facade), and the synchronous WaitDone below keeps the lifetimes safe.
  server::JobHandle job = job_server().SubmitParsed(
      "local", stmt.Clone(), /*sql_text=*/"", options, observer_,
      /*url_params=*/"", master_.get());
  job.WaitDone();
  // Adopt the job's stats whether it succeeded or not: a failed run's
  // partial counters (retries, checkpoints written before a crash) still
  // tell the story, exactly as the pre-service facade reported them.
  stats_ = job.Stats();
  return job.Wait();  // returns the result or rethrows the job's error
}

}  // namespace sqloop::core
