#include "core/sqloop.h"

#include "common/error.h"
#include "common/logging.h"
#include "core/analysis.h"
#include "core/parallel.h"
#include "core/resilience.h"
#include "core/schema_infer.h"
#include "core/single_thread.h"
#include "core/translator.h"
#include "dbc/driver.h"
#include "sql/parser.h"

namespace sqloop::core {
namespace {

/// Detaches the recorder from a connection when the run leaves scope — the
/// recorder dies with RunStats, the connection does not.
class RecorderAttachment {
 public:
  RecorderAttachment(dbc::Connection& conn, telemetry::Recorder* recorder)
      : conn_(conn) {
    conn_.set_recorder(recorder);
  }
  ~RecorderAttachment() { conn_.set_recorder(nullptr); }
  RecorderAttachment(const RecorderAttachment&) = delete;
  RecorderAttachment& operator=(const RecorderAttachment&) = delete;

 private:
  dbc::Connection& conn_;
};

}  // namespace

const char* ExecutionModeName(ExecutionMode mode) noexcept {
  switch (mode) {
    case ExecutionMode::kSingleThread:
      return "single-thread";
    case ExecutionMode::kSync:
      return "sync";
    case ExecutionMode::kAsync:
      return "async";
    case ExecutionMode::kAsyncPriority:
      return "async-priority";
  }
  return "?";
}

SqLoop::SqLoop(std::string url, SqloopOptions options)
    : url_(std::move(url)),
      options_(options),
      master_(dbc::DriverManager::GetConnection(url_)) {}

dbc::ResultSet SqLoop::Execute(const std::string& sql) {
  return Execute(sql, options_);
}

dbc::ResultSet SqLoop::Execute(const std::string& sql,
                               const SqloopOptions& options) {
  const auto stmt = sql::ParseStatement(sql);
  return ExecuteStatement(*stmt, options);
}

dbc::ResultSet SqLoop::ExecuteScript(const std::string& script) {
  const auto statements = sql::ParseScript(script);
  dbc::ResultSet last;
  for (const auto& stmt : statements) {
    last = ExecuteStatement(*stmt, options_);
  }
  return last;
}

telemetry::Recorder* SqLoop::BeginRun() {
  stats_ = {};
  stats_.recorder = std::make_shared<telemetry::Recorder>();
  return stats_.recorder.get();
}

dbc::ResultSet SqLoop::ExecuteStatement(const sql::Statement& stmt,
                                        const SqloopOptions& options) {
  const Translator translator = Translator::For(*master_);

  if (stmt.kind != sql::StatementKind::kWith) {
    // Regular SQL: rewritten by the translation module for the target
    // dialect and forwarded as-is (paper §IV-B).
    return master_->Execute(translator.Render(stmt));
  }

  switch (stmt.with.kind) {
    case sql::CteKind::kPlain:
      return master_->Execute(translator.Render(stmt));
    case sql::CteKind::kRecursive: {
      if (master_->profile().supports_recursive_cte) {
        return master_->Execute(translator.Render(stmt));
      }
      SQLOOP_INFO("engine '" << master_->profile().name
                             << "' lacks recursive CTEs; emulating");
      telemetry::Recorder* recorder = BeginRun();
      const RecorderAttachment attach(*master_, recorder);
      const ExecutionContext ctx{options, stats_, recorder, observer_};
      return RunRecursiveEmulated(*master_, stmt.with, ctx);
    }
    case sql::CteKind::kIterative:
      return ExecuteIterative(stmt.with, options);
  }
  throw UsageError("unknown CTE kind");
}

dbc::ResultSet SqLoop::ExecuteIterative(const sql::WithClause& with,
                                        const SqloopOptions& options) {
  // Checkpoint defaults carried by the connection URL (checkpoint_every /
  // checkpoint_dir) apply when the per-call options leave them unset, so a
  // deployment can turn on durability without touching call sites.
  SqloopOptions effective = options;
  if (effective.checkpoint_every == 0 || effective.checkpoint_dir.empty()) {
    try {
      const auto config = dbc::ConnectionConfig::Parse(url_);
      if (effective.checkpoint_every == 0) {
        effective.checkpoint_every = config.checkpoint_every;
      }
      if (effective.checkpoint_dir.empty()) {
        effective.checkpoint_dir = config.checkpoint_dir;
      }
    } catch (...) {
      // The URL already opened this session's connection; a re-parse
      // failure here only forfeits the URL defaults.
    }
  }

  telemetry::Recorder* recorder = BeginRun();
  const RecorderAttachment attach(*master_, recorder);
  const ExecutionContext ctx{effective, stats_, recorder, observer_};

  const auto fall_back = [&](const std::string& reason) {
    stats_.fallback_reason = reason;
    if (observer_ != nullptr) observer_->OnFallback(reason);
    return RunIterativeSingleThread(*master_, with, ctx);
  };

  if (effective.mode == ExecutionMode::kSingleThread) {
    stats_.fallback_reason = "single-thread mode requested";
    return RunIterativeSingleThread(*master_, with, ctx);
  }

  // Automatic analysis (paper §V-A): parallelize when the iterative member
  // uses a supported aggregate and fits the partitionable shape.
  const CteAnalysis analysis = AnalyzeIterativeCte(with);
  if (!analysis.parallelizable) {
    SQLOOP_INFO("falling back to single-threaded execution: "
                << analysis.reason);
    return fall_back(analysis.reason);
  }

  const Translator translator = Translator::For(*master_);
  // Schema inference runs before the runner's own retry machinery exists;
  // a transient fault here must not abort the run.
  Retrier setup_retrier(effective.retry, recorder, observer_);
  auto schema = setup_retrier.Run(*master_, "setup", -1, [&] {
    return InferSchemaFromSelect(*master_, translator, *with.seed,
                                 with.columns, /*widen_non_key=*/true);
  });
  stats_.retries += setup_retrier.retries();
  stats_.reopened_connections += setup_retrier.reopened_connections();
  stats_.timeouts += setup_retrier.timeouts();
  if (schema.empty() || schema[0].type != ValueType::kInt64) {
    const std::string reason =
        "the key column is not integer-typed; hash partitioning on Rid "
        "requires integer keys";
    SQLOOP_INFO("falling back to single-threaded execution: " << reason);
    return fall_back(reason);
  }

  ParallelRunner runner(url_, *master_, with, analysis, std::move(schema),
                        ctx);
  return runner.Run();
}

}  // namespace sqloop::core
