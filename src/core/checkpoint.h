// Iteration-level checkpointing and crash recovery (DESIGN.md
// "Checkpointing & recovery").
//
// At a configurable round cadence the runners persist a *consistent job
// manifest*: the CTE state (whole table, or every partition table plus the
// not-yet-consumed message tables), the iteration number, the scheduler
// state AsyncP needs for bit-identical tie-breaking, and a content hash
// over all dump files. Table payloads go through the minidb DUMP TABLE
// fast path (tmp + atomic rename + CRC footer, see minidb/dump.h); the
// manifest itself is a CRC-sealed text file written the same way. A crash
// can therefore only ever leave (a) no new checkpoint, or (b) a complete,
// self-validating one — never a torn one under a committed name.
//
// Recovery scans the job's checkpoint directory newest-first and resumes
// from the first checkpoint that fully validates (manifest CRC, every dump
// CRC, content hash); corrupt or torn candidates are skipped, falling back
// to the previous checkpoint and ultimately to a fresh run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/options.h"

namespace sqloop::core {

/// Everything a checkpoint captured. File members hold paths relative to
/// the checkpoint directory on disk; RecoveryManager returns them resolved
/// to absolute-usable paths.
struct CheckpointManifest {
  int64_t round = 0;         // completed rounds at capture time
  std::string mode;          // ExecutionModeName, sanity-checked on resume
  int64_t partitions = 0;    // 0 for the single-thread runner

  // Single-thread runner: the CTE table dump.
  std::string table_file;

  // Parallel runner: one dump per partition table, index == partition id.
  std::vector<std::string> partition_files;

  /// A not-yet-dropped message table: name, dump file, and the partitions
  /// its rows target (empty = broadcast, mirrors the message registry).
  struct MessageEntry {
    std::string table;
    std::string file;
    size_t source = 0;  // producing partition; orders gather unions
    std::vector<size_t> targets;
  };
  std::vector<MessageEntry> messages;

  /// Per-partition consumed watermark into the message registry.
  std::vector<size_t> consumed;

  uint64_t message_seq = 0;  // next message-table sequence number

  // AsyncP scheduler state, needed for bit-identical dispatch tie-breaking.
  uint64_t dispatch_seq = 0;
  std::vector<uint64_t> last_dispatch;
  /// Per-partition priority, encoded tri-state: 'u' = never measured,
  /// 'n' = measured as "no work", otherwise the double's raw bits.
  std::vector<std::optional<double>> priorities;
  std::vector<char> priority_known;

  /// FNV-1a over the CRC footers of every dump file, in manifest order.
  /// Catches a valid dump swapped in from a *different* checkpoint.
  uint64_t content_hash = 0;
};

/// Writes checkpoints for one job. Layout:
///   <dir>/<job_id>/ckpt_<round>/{manifest, *.dump}
class CheckpointManager {
 public:
  /// `dir` empty means "sqloop_ckpt". `job_id` namespaces concurrent jobs;
  /// use JobId() so reruns of the same query find their own checkpoints.
  /// `keep` is the retention depth (`checkpoint_keep`): how many of the
  /// newest sealed checkpoints survive pruning (0 = the default of 2).
  /// `verify` re-reads and re-validates every committed checkpoint from
  /// disk immediately after sealing (`verify_checkpoints`).
  CheckpointManager(std::string dir, std::string job_id, int64_t keep = 0,
                    bool verify = false);

  /// Stable identity of a job: hash of the rendered query + mode +
  /// partition count. Two runs of the same job map to the same id — which
  /// is exactly what lets `resume` find the first run's checkpoints.
  static std::string JobId(const std::string& identity);

  /// Creates (emptying any torn leftover) the staging directory for round
  /// N's checkpoint and returns its path.
  std::string BeginRound(int64_t round);

  /// Absolute path for a dump file inside round N's checkpoint directory.
  std::string FileFor(int64_t round, const std::string& stem) const;

  /// Seals the checkpoint: computes the content hash from the dump files
  /// on disk, writes the CRC-sealed manifest atomically, then prunes all
  /// but the `keep` newest sealed checkpoints (older ones are kept as
  /// fallbacks for a torn/corrupt newest). With `verify` on, the sealed
  /// checkpoint is read back and fully re-validated before returning.
  void Commit(CheckpointManifest manifest);

  /// Checkpoints that passed the post-commit read-back (verify mode only).
  uint64_t verified_count() const noexcept { return verified_; }

  /// Dump reuse for unchanged tables: when `checksum` (the table's
  /// maintained content checksum, probed with CHECKSUM TABLE — O(1))
  /// matches what the previous committed round sealed for `stem`, the
  /// sealed dump's bytes are republished into round N's staging directory
  /// through the durability shim — same file, same crash-point ordinals as
  /// a fresh dump, but no O(table) re-serialization. Returns true when the
  /// reuse happened and the fresh DUMP TABLE can be skipped; false (cache
  /// miss, checksum change, or unreadable previous file) means dump as
  /// usual. Callers must RecordDumpChecksum() after a fresh dump either
  /// way.
  bool TryReuseDump(int64_t round, const std::string& stem,
                    const std::string& checksum);

  /// Records `checksum` as what round N sealed for `stem`, arming reuse
  /// for the next round. Call after the dump statement succeeds (before or
  /// after Commit — a failed Commit aborts the job, so staleness cannot
  /// leak into a later round).
  void RecordDumpChecksum(int64_t round, const std::string& stem,
                          const std::string& checksum);

  const std::string& job_root() const noexcept { return root_; }

 private:
  std::string RoundDir(int64_t round) const;

  std::string root_;  // <dir>/<job_id>
  int64_t keep_;
  bool verify_;
  uint64_t verified_ = 0;

  struct SealedDump {
    int64_t round = 0;     // round whose directory holds the bytes
    std::string checksum;  // CHECKSUM TABLE text at seal time
  };
  std::unordered_map<std::string, SealedDump> sealed_;  // keyed by stem
};

/// Finds the newest fully-valid checkpoint of a job.
class RecoveryManager {
 public:
  RecoveryManager(std::string dir, std::string job_id);

  /// Scans newest-first; returns the first checkpoint whose manifest and
  /// every referenced dump validate (CRCs + content hash), with file paths
  /// resolved against the checkpoint directory. nullopt = start fresh.
  /// Never throws: any unreadable candidate is skipped.
  std::optional<CheckpointManifest> FindLatestValid() const;

  const std::string& job_root() const noexcept { return root_; }

 private:
  std::string root_;
};

/// Shared by both runners: the directory that `checkpoint_dir` resolves to.
std::string ResolveCheckpointDir(const SqloopOptions& options);

}  // namespace sqloop::core
