#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/checksum.h"
#include "common/error.h"
#include "common/fault_file.h"
#include "minidb/dump.h"

namespace fs = std::filesystem;

namespace sqloop::core {
namespace {

constexpr char kManifestName[] = "manifest";
constexpr char kRoundDirPrefix[] = "ckpt_";
constexpr int64_t kDefaultKeepCheckpoints = 2;

uint64_t Fnv1a(const void* data, size_t length, uint64_t hash) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < length; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}
constexpr uint64_t kFnvOffset = 14695981039346656037ull;

std::string JoinSizes(const std::vector<size_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

std::string JoinU64(const std::vector<uint64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  size_t start = 0;
  while (true) {
    const size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

uint64_t ParseU64(const std::string& text) {
  size_t consumed = 0;
  const uint64_t value = std::stoull(text, &consumed);
  if (consumed != text.size()) throw ExecutionError("bad manifest number");
  return value;
}

std::string HexU64(uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Priorities round-trip as raw bit patterns, never as formatted decimals —
/// the bit-identical resume guarantee extends to AsyncP's scheduling input.
std::string EncodePriority(const std::optional<double>& value, bool known) {
  if (!known) return "u";
  if (!value.has_value()) return "n";
  uint64_t bits;
  std::memcpy(&bits, &*value, sizeof(bits));
  return HexU64(bits);
}

void DecodePriority(const std::string& text, std::optional<double>* value,
                    char* known) {
  if (text == "u") {
    *known = 0;
    value->reset();
    return;
  }
  *known = 1;
  if (text == "n") {
    value->reset();
    return;
  }
  if (text.size() != 16) throw ExecutionError("bad manifest priority");
  const uint64_t bits = std::stoull(text, nullptr, 16);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  *value = v;
}

/// The manifest is `key=value` lines sealed by a final `crc=` line over
/// every preceding byte, published tmp + rename through the durability
/// shim like the dumps (so manifest sealing is crash-point-enumerable).
void WriteSealedFile(const std::string& path, const std::string& body) {
  std::string out = body;
  out += "crc=" + std::to_string(Crc32(out.data(), out.size())) + "\n";
  FaultFile::PublishFile(path, out.data(), out.size(), "checkpoint manifest");
}

/// Returns the manifest body (CRC line stripped) or throws.
std::string ReadSealedFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ExecutionError("cannot open manifest '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const size_t crc_pos = data.rfind("crc=");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      data[crc_pos - 1] != '\n' || data.back() != '\n') {
    throw ExecutionError("manifest '" + path + "' is torn");
  }
  const std::string crc_text =
      data.substr(crc_pos + 4, data.size() - crc_pos - 5);
  if (ParseU64(crc_text) != Crc32(data.data(), crc_pos)) {
    throw ExecutionError("manifest '" + path + "' failed CRC validation");
  }
  return data.substr(0, crc_pos);
}

std::string RenderManifest(const CheckpointManifest& m) {
  std::ostringstream out;
  out << "sqloop_checkpoint=1\n";
  out << "round=" << m.round << "\n";
  out << "mode=" << m.mode << "\n";
  out << "partitions=" << m.partitions << "\n";
  if (!m.table_file.empty()) out << "table_file=" << m.table_file << "\n";
  if (!m.partition_files.empty()) {
    std::string joined;
    for (size_t i = 0; i < m.partition_files.size(); ++i) {
      if (i > 0) joined += ',';
      joined += m.partition_files[i];
    }
    out << "partition_files=" << joined << "\n";
  }
  out << "message_count=" << m.messages.size() << "\n";
  for (size_t i = 0; i < m.messages.size(); ++i) {
    const auto& msg = m.messages[i];
    out << "message." << i << "=" << msg.table << "|" << msg.file << "|"
        << msg.source << "|" << JoinSizes(msg.targets) << "\n";
  }
  out << "consumed=" << JoinSizes(m.consumed) << "\n";
  out << "message_seq=" << m.message_seq << "\n";
  out << "dispatch_seq=" << m.dispatch_seq << "\n";
  out << "last_dispatch=" << JoinU64(m.last_dispatch) << "\n";
  std::string priorities;
  for (size_t i = 0; i < m.priorities.size(); ++i) {
    if (i > 0) priorities += ',';
    priorities += EncodePriority(m.priorities[i], m.priority_known[i] != 0);
  }
  out << "priorities=" << priorities << "\n";
  out << "content_hash=" << m.content_hash << "\n";
  return out.str();
}

CheckpointManifest ParseManifest(const std::string& body) {
  std::map<std::string, std::string> fields;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    const size_t eq = line.find('=');
    if (eq == std::string::npos) throw ExecutionError("bad manifest line");
    fields[line.substr(0, eq)] = line.substr(eq + 1);
  }
  auto require = [&](const std::string& key) -> const std::string& {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      throw ExecutionError("manifest is missing '" + key + "'");
    }
    return it->second;
  };
  if (require("sqloop_checkpoint") != "1") {
    throw ExecutionError("unsupported manifest version");
  }
  CheckpointManifest m;
  m.round = static_cast<int64_t>(ParseU64(require("round")));
  m.mode = require("mode");
  m.partitions = static_cast<int64_t>(ParseU64(require("partitions")));
  if (const auto it = fields.find("table_file"); it != fields.end()) {
    m.table_file = it->second;
  }
  if (const auto it = fields.find("partition_files"); it != fields.end()) {
    m.partition_files = SplitList(it->second);
  }
  const size_t message_count = ParseU64(require("message_count"));
  for (size_t i = 0; i < message_count; ++i) {
    const std::string& entry = require("message." + std::to_string(i));
    const size_t bar1 = entry.find('|');
    const size_t bar2 =
        bar1 == std::string::npos ? bar1 : entry.find('|', bar1 + 1);
    const size_t bar3 =
        bar2 == std::string::npos ? bar2 : entry.find('|', bar2 + 1);
    if (bar3 == std::string::npos) throw ExecutionError("bad message entry");
    CheckpointManifest::MessageEntry msg;
    msg.table = entry.substr(0, bar1);
    msg.file = entry.substr(bar1 + 1, bar2 - bar1 - 1);
    msg.source = ParseU64(entry.substr(bar2 + 1, bar3 - bar2 - 1));
    for (const std::string& t : SplitList(entry.substr(bar3 + 1))) {
      msg.targets.push_back(ParseU64(t));
    }
    m.messages.push_back(std::move(msg));
  }
  for (const std::string& c : SplitList(require("consumed"))) {
    m.consumed.push_back(ParseU64(c));
  }
  m.message_seq = ParseU64(require("message_seq"));
  m.dispatch_seq = ParseU64(require("dispatch_seq"));
  for (const std::string& d : SplitList(require("last_dispatch"))) {
    m.last_dispatch.push_back(ParseU64(d));
  }
  for (const std::string& p : SplitList(require("priorities"))) {
    std::optional<double> value;
    char known = 0;
    DecodePriority(p, &value, &known);
    m.priorities.push_back(value);
    m.priority_known.push_back(known);
  }
  m.content_hash = ParseU64(require("content_hash"));
  return m;
}

/// Dump files in manifest order; the content hash covers their CRC footers
/// in exactly this order.
std::vector<std::string> DumpFilesOf(const CheckpointManifest& m) {
  std::vector<std::string> files;
  if (!m.table_file.empty()) files.push_back(m.table_file);
  for (const auto& f : m.partition_files) files.push_back(f);
  for (const auto& msg : m.messages) files.push_back(msg.file);
  return files;
}

/// Validates every dump and folds their CRCs into the content hash.
/// Returns false (with no exception) on any invalid file.
bool HashDumpFiles(const std::string& dir, const CheckpointManifest& m,
                   uint64_t* hash_out) {
  uint64_t hash = kFnvOffset;
  for (const std::string& file : DumpFilesOf(m)) {
    uint32_t crc = 0;
    if (!minidb::ValidateDumpFile(dir + "/" + file, &crc)) return false;
    hash = Fnv1a(&crc, sizeof(crc), hash);
  }
  *hash_out = hash;
  return true;
}

std::optional<int64_t> RoundOfDir(const fs::path& path) {
  const std::string name = path.filename().string();
  if (name.rfind(kRoundDirPrefix, 0) != 0) return std::nullopt;
  try {
    return static_cast<int64_t>(
        ParseU64(name.substr(std::strlen(kRoundDirPrefix))));
  } catch (...) {
    return std::nullopt;
  }
}

/// Sealed = the manifest file exists (it is only ever renamed into place
/// after a complete write).
bool IsSealed(const fs::path& round_dir) {
  std::error_code ec;
  return fs::exists(round_dir / kManifestName, ec);
}

std::string BaseDir(std::string dir) {
  return dir.empty() ? std::string("sqloop_ckpt") : dir;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir, std::string job_id,
                                     int64_t keep, bool verify)
    : root_(BaseDir(std::move(dir)) + "/" + job_id),
      keep_(keep > 0 ? keep : kDefaultKeepCheckpoints),
      verify_(verify) {}

std::string CheckpointManager::JobId(const std::string& identity) {
  return HexU64(Fnv1a(identity.data(), identity.size(), kFnvOffset));
}

std::string CheckpointManager::RoundDir(int64_t round) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08lld", kRoundDirPrefix,
                static_cast<long long>(round));
  return root_ + "/" + buf;
}

std::string CheckpointManager::BeginRound(int64_t round) {
  const std::string dir = RoundDir(round);
  std::error_code ec;
  fs::remove_all(dir, ec);  // torn leftover from a previous crashed attempt
  fs::create_directories(dir, ec);
  if (ec) {
    throw ExecutionError("cannot create checkpoint directory '" + dir +
                         "': " + ec.message());
  }
  return dir;
}

std::string CheckpointManager::FileFor(int64_t round,
                                       const std::string& stem) const {
  return RoundDir(round) + "/" + stem;
}

bool CheckpointManager::TryReuseDump(int64_t round, const std::string& stem,
                                     const std::string& checksum) {
  const auto it = sealed_.find(stem);
  if (it == sealed_.end() || it->second.checksum != checksum) return false;
  // The previous round's directory survives pruning until the next Commit
  // (retention >= 1 always keeps the newest sealed checkpoint), but a
  // concurrent operator cleanup could have removed it — fall back to a
  // fresh dump on any read failure rather than failing the checkpoint.
  std::string bytes;
  try {
    std::ifstream in(FileFor(it->second.round, stem), std::ios::binary);
    if (!in) return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    if (in.bad() || bytes.empty()) return false;
  } catch (...) {
    return false;
  }
  // Republish through the durability shim: same tmp+rename+fsync sequence
  // (and therefore the same crash-point ordinals) as a fresh DUMP TABLE,
  // so crash-injection schedules are unchanged by reuse kicking in.
  FaultFile::PublishFile(FileFor(round, stem), bytes.data(), bytes.size(),
                         "dump file");
  it->second.round = round;
  return true;
}

void CheckpointManager::RecordDumpChecksum(int64_t round,
                                           const std::string& stem,
                                           const std::string& checksum) {
  sealed_[stem] = SealedDump{round, checksum};
}

void CheckpointManager::Commit(CheckpointManifest manifest) {
  const std::string dir = RoundDir(manifest.round);
  if (!HashDumpFiles(dir, manifest, &manifest.content_hash)) {
    throw ExecutionError("checkpoint " + dir +
                         " has an invalid dump file; not committing");
  }
  WriteSealedFile(dir + "/" + kManifestName, RenderManifest(manifest));

  if (verify_) {
    // Read-back verification: the checkpoint we just sealed must validate
    // from disk the same way recovery would validate it (manifest CRC,
    // every dump CRC, content hash). Catches write-path bugs and silent
    // storage faults at commit time rather than at the next crash.
    CheckpointManifest reread =
        ParseManifest(ReadSealedFile(dir + "/" + kManifestName));
    uint64_t hash = 0;
    if (reread.round != manifest.round ||
        !HashDumpFiles(dir, reread, &hash) || hash != reread.content_hash) {
      throw IntegrityError("checkpoint " + dir +
                           " failed post-commit verification");
    }
    ++verified_;
  }

  // Prune: keep the newest keep_ sealed checkpoints, drop everything else
  // (including older torn directories).
  std::vector<int64_t> sealed;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const auto round = RoundOfDir(entry.path());
    if (round && IsSealed(entry.path())) sealed.push_back(*round);
  }
  std::sort(sealed.begin(), sealed.end(), std::greater<int64_t>());
  const int64_t oldest_kept =
      static_cast<int64_t>(sealed.size()) > keep_
          ? sealed[static_cast<size_t>(keep_ - 1)]
          : (sealed.empty() ? 0 : sealed.back());
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const auto round = RoundOfDir(entry.path());
    if (!round) continue;
    if (*round < oldest_kept || (!IsSealed(entry.path()) && *round < manifest.round)) {
      fs::remove_all(entry.path(), ec);
    }
  }
}

RecoveryManager::RecoveryManager(std::string dir, std::string job_id)
    : root_(BaseDir(std::move(dir)) + "/" + job_id) {}

std::optional<CheckpointManifest> RecoveryManager::FindLatestValid() const {
  std::vector<std::pair<int64_t, fs::path>> candidates;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (const auto round = RoundOfDir(entry.path())) {
      candidates.emplace_back(*round, entry.path());
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [round, path] : candidates) {
    try {
      CheckpointManifest m =
          ParseManifest(ReadSealedFile((path / kManifestName).string()));
      if (m.round != round) continue;  // manifest landed in the wrong dir
      uint64_t hash = 0;
      if (!HashDumpFiles(path.string(), m, &hash)) continue;
      if (hash != m.content_hash) continue;
      // Resolve file names against the checkpoint directory so callers can
      // hand them straight to RESTORE TABLE.
      const std::string dir = path.string();
      if (!m.table_file.empty()) m.table_file = dir + "/" + m.table_file;
      for (auto& f : m.partition_files) f = dir + "/" + f;
      for (auto& msg : m.messages) msg.file = dir + "/" + msg.file;
      return m;
    } catch (...) {
      // Torn or corrupt candidate: fall back to the next-newest.
      continue;
    }
  }
  return std::nullopt;
}

std::string ResolveCheckpointDir(const SqloopOptions& options) {
  return BaseDir(options.checkpoint_dir);
}

}  // namespace sqloop::core
