// The translation module (paper §IV-B): renders canonical ASTs as SQL for
// the connected engine's dialect and provides the AST rewrites the
// executors need (re-pointing CTE references at real tables, re-qualifying
// columns, substituting aggregate calls). Auto-configures from the
// connection's profile.
#pragma once

#include <string>
#include <unordered_map>

#include "dbc/connection.h"
#include "sql/ast.h"
#include "sql/printer.h"

namespace sqloop::core {

class Translator {
 public:
  explicit Translator(Dialect dialect) : dialect_(dialect) {}

  /// Auto-configuration from the live connection (the paper's "based on
  /// the JDBC drivers that are used").
  static Translator For(const dbc::Connection& connection) {
    return Translator(connection.dialect());
  }

  Dialect dialect() const noexcept { return dialect_; }

  std::string Render(const sql::Statement& stmt) const {
    return sql::PrintStatement(stmt, dialect_);
  }
  std::string Render(const sql::SelectStmt& select) const {
    return sql::PrintSelect(select, dialect_);
  }
  std::string Render(const sql::Expr& expr) const {
    return sql::PrintExpr(expr, dialect_);
  }
  std::string Quote(const std::string& identifier) const {
    return sql::QuoteIdentifier(identifier, dialect_);
  }

  /// CREATE [UNLOGGED] TABLE <name> (...) with engine-appropriate options.
  /// `primary_key_index` < 0 means no primary key.
  std::string CreateTableSql(const std::string& name,
                             const std::vector<sql::ColumnDef>& columns,
                             int primary_key_index) const;

  std::string DropTableSql(const std::string& name,
                           bool if_exists = true) const;

 private:
  Dialect dialect_;
};

/// Re-points base-table references: any FROM entry whose (folded) table
/// name appears in `renames` is redirected to the mapped table. The
/// original name is preserved as the alias so column qualifiers in the
/// query keep resolving (e.g. `FROM PageRank` -> `FROM pagerank_w AS
/// PageRank`).
void RenameBaseTables(
    sql::SelectStmt& select,
    const std::unordered_map<std::string, std::string>& renames);

/// Rewrites column-reference qualifiers: refs qualified with `from`
/// (folded comparison) become qualified with `to`.
void RequalifyColumns(sql::Expr& expr, const std::string& from,
                      const std::string& to);

/// Returns a clone of `expr` with the single aggregate call matching
/// `agg` (structurally) replaced by `replacement`. Used by the gather-side
/// COUNT/AVG rewrites (paper §V-D).
sql::ExprPtr SubstituteAggregate(const sql::Expr& expr, const sql::Expr& agg,
                                 const sql::Expr& replacement);

}  // namespace sqloop::core
