// Schema inference for SQLoop-managed tables. Engines need a CREATE TABLE
// before `INSERT INTO R R0` (paper §IV-B), but a CTE declares only column
// names — so SQLoop samples the seed query and derives column types.
//
// Widening rule: the key column (Rid, always first) keeps its sampled
// type; every other numeric column widens to DOUBLE, because iterative
// members routinely turn integer seeds into fractional values (PageRank
// seeds Rank with the integer 0 and then accumulates doubles into it).
#pragma once

#include <string>
#include <vector>

#include "core/translator.h"
#include "dbc/connection.h"
#include "sql/ast.h"

namespace sqloop::core {

/// Samples `SELECT * FROM (<select>) LIMIT 100` and returns column
/// definitions. `declared_columns` (the CTE column list) overrides the
/// select's output names when non-empty; a mismatch in arity throws
/// AnalysisError. With `widen_non_key` false, sampled types are kept as-is
/// (recursive CTEs append rows, they never mutate them).
std::vector<sql::ColumnDef> InferSchemaFromSelect(
    dbc::Connection& connection, const Translator& translator,
    const sql::SelectStmt& select,
    const std::vector<std::string>& declared_columns, bool widen_non_key);

/// Samples the listed columns of an existing table.
std::vector<sql::ColumnDef> InferTableColumns(
    dbc::Connection& connection, const Translator& translator,
    const std::string& table, const std::vector<std::string>& columns);

}  // namespace sqloop::core
