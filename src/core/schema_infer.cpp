#include "core/schema_infer.h"

#include "common/error.h"
#include "minidb/schema.h"

namespace sqloop::core {
namespace {

constexpr int64_t kSampleRows = 100;

std::vector<sql::ColumnDef> DeriveColumns(
    const dbc::ResultSet& sample,
    const std::vector<std::string>& declared_columns, bool widen_non_key) {
  if (!declared_columns.empty() &&
      declared_columns.size() != sample.columns.size()) {
    throw AnalysisError("CTE declares " +
                        std::to_string(declared_columns.size()) +
                        " columns but its seed produces " +
                        std::to_string(sample.columns.size()));
  }
  std::vector<sql::ColumnDef> defs;
  defs.reserve(sample.columns.size());
  for (size_t c = 0; c < sample.columns.size(); ++c) {
    sql::ColumnDef def;
    def.name = minidb::FoldIdentifier(
        declared_columns.empty() ? sample.columns[c] : declared_columns[c]);
    // First non-NULL sampled value decides; all-NULL defaults to DOUBLE.
    ValueType sampled = ValueType::kNull;
    for (const auto& row : sample.rows) {
      if (!row[c].is_null()) {
        sampled = row[c].type();
        break;
      }
    }
    switch (sampled) {
      case ValueType::kInt64:
        def.type = (c > 0 && widen_non_key) ? ValueType::kDouble
                                            : ValueType::kInt64;
        break;
      case ValueType::kDouble:
      case ValueType::kNull:
        def.type = ValueType::kDouble;
        break;
      case ValueType::kText:
        def.type = ValueType::kText;
        break;
    }
    defs.push_back(std::move(def));
  }
  return defs;
}

}  // namespace

std::vector<sql::ColumnDef> InferSchemaFromSelect(
    dbc::Connection& connection, const Translator& translator,
    const sql::SelectStmt& select,
    const std::vector<std::string>& declared_columns, bool widen_non_key) {
  // SELECT * FROM (<select>) AS sqloop_sample LIMIT 100
  auto probe = std::make_unique<sql::SelectStmt>();
  sql::SelectCore core;
  core.items.push_back({sql::MakeStar(), ""});
  core.from = sql::MakeSubquery(select.Clone(), "sqloop_sample");
  probe->cores.push_back(std::move(core));
  probe->limit = kSampleRows;
  const auto sample = connection.ExecuteQuery(translator.Render(*probe));
  return DeriveColumns(sample, declared_columns, widen_non_key);
}

std::vector<sql::ColumnDef> InferTableColumns(
    dbc::Connection& connection, const Translator& translator,
    const std::string& table, const std::vector<std::string>& columns) {
  auto probe = std::make_unique<sql::SelectStmt>();
  sql::SelectCore core;
  for (const auto& column : columns) {
    core.items.push_back({sql::MakeColumnRef("", column), ""});
  }
  core.from = sql::MakeBaseTable(table);
  probe->cores.push_back(std::move(core));
  probe->limit = kSampleRows;
  const auto sample = connection.ExecuteQuery(translator.Render(*probe));
  return DeriveColumns(sample, columns, /*widen_non_key=*/false);
}

}  // namespace sqloop::core
