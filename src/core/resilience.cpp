#include "core/resilience.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "dbc/driver.h"
#include "telemetry/hooks.h"

namespace sqloop::core {

Retrier::Retrier(const RetryPolicy& policy, telemetry::Recorder* recorder,
                 ExecutionObserver* observer)
    : policy_(policy),
      recorder_(recorder),
      observer_(observer),
      jitter_rng_(policy.jitter_seed) {}

int64_t Retrier::NextBackoffMs(int attempt) {
  if (policy_.backoff_base_ms <= 0) return 0;
  double backoff = static_cast<double>(policy_.backoff_base_ms) *
                   std::pow(policy_.backoff_multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(policy_.backoff_max_ms));
  // Deterministic jitter in [0.5, 1.0]: decorrelates workers without
  // sacrificing run-to-run reproducibility (seeded stream).
  double jitter;
  {
    const std::lock_guard<std::mutex> lock(jitter_mutex_);
    jitter = 0.5 + 0.5 * jitter_rng_.NextDouble();
  }
  return std::max<int64_t>(0, static_cast<int64_t>(backoff * jitter));
}

void Retrier::NoteRetry(const char* what, int64_t partition, int attempt,
                        int64_t backoff_ms, const std::string& error) {
  retries_.fetch_add(1);
  SQLOOP_COUNT(recorder_, "resilience.retries", 1);
  if (observer_ != nullptr) {
    observer_->OnRetry(RetryEvent{what, partition, attempt, backoff_ms,
                                  error});
  }
}

void Retrier::HandleFailure(const std::exception& error, const char* what,
                            int64_t partition, int attempt) {
  // Cancellation and quota breaches are explicitly non-retryable: retrying
  // a cancelled job defeats the cancel, and a job over its memory budget
  // will just breach it again. Both are fatal via IsTransientError too —
  // this spells the classification out so a future error-taxonomy change
  // cannot silently make them retryable.
  if (dynamic_cast<const JobCancelledError*>(&error) != nullptr ||
      dynamic_cast<const QuotaExceededError*>(&error) != nullptr) {
    throw;
  }
  if (!IsTransientError(error)) throw;  // fatal: surface the original error
  if (dynamic_cast<const TimeoutError*>(&error) != nullptr) {
    timeouts_.fetch_add(1);
    SQLOOP_COUNT(recorder_, "resilience.timeouts", 1);
  }
  if (attempt >= policy_.max_attempts) {
    throw RetryExhausted(attempt, error.what());
  }
  const int64_t backoff_ms = NextBackoffMs(attempt);
  NoteRetry(what, partition, attempt, backoff_ms, error.what());
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

void Retrier::Reopen(dbc::Connection& conn, const char* /*what*/,
                     int64_t /*partition*/, int /*attempt*/) {
  conn.Reopen();  // may throw ConnectionLostError -> handled by the caller
  reopens_.fetch_add(1);
  SQLOOP_COUNT(recorder_, "resilience.reopened_connections", 1);
}

std::unique_ptr<dbc::Connection> Retrier::Open(const std::string& url) {
  for (int attempt = 1;; ++attempt) {
    try {
      auto conn = dbc::DriverManager::GetConnection(url);
      conn->set_statement_timeout_ms(policy_.statement_timeout_ms);
      conn->set_recorder(recorder_);
      ApplyGovernance(*conn);
      return conn;
    } catch (const std::exception& e) {
      HandleFailure(e, "open", -1, attempt);
    }
  }
}

dbc::Connection& Retrier::EnsureOpen(std::unique_ptr<dbc::Connection>& slot,
                                     const std::string& url) {
  for (int attempt = 1;; ++attempt) {
    try {
      if (!slot) {
        // A fresh open replacing a lost/abandoned connection counts as a
        // reopen: it is the recovery action, just without an old handle.
        slot = dbc::DriverManager::GetConnection(url);
        slot->set_statement_timeout_ms(policy_.statement_timeout_ms);
        slot->set_recorder(recorder_);
        ApplyGovernance(*slot);
        reopens_.fetch_add(1);
        SQLOOP_COUNT(recorder_, "resilience.reopened_connections", 1);
      } else if (slot->closed()) {
        Reopen(*slot, "reopen", -1, attempt);
      }
      return *slot;
    } catch (const std::exception& e) {
      HandleFailure(e, "reopen", -1, attempt);
    }
  }
}

}  // namespace sqloop::core
