// The paper's evaluation queries (Examples 2 and 3 plus the Descendant
// Query of §VI-A) as ready-to-run iterative CTE strings, parameterized the
// way the benchmarks need. All assume an `edges(src, dst, weight)` table
// with weight = 1/outdegree (see graph::LoadEdges).
#pragma once

#include <cstdint>
#include <string>

namespace sqloop::core::workloads {

/// Example 2 — PageRank over the whole graph, UNTIL n ITERATIONS.
std::string PageRankQuery(int64_t iterations);

/// Example 3 — single-source shortest path, UNTIL 0 UPDATES. Returns the
/// distance of `destination`.
std::string SsspQuery(int64_t source, int64_t destination);

/// Variant returning all distances (used to compare against Dijkstra).
std::string SsspAllQuery(int64_t source);

/// Descendant Query (§VI-A): hop counts ("clicks") from `source`;
/// terminates when no hop count improves. Returns all discovered nodes
/// with their hop counts.
std::string DescendantQuery(int64_t source);

/// Descendant Query bounded to `max_hops` iterations (the Fig. 4 sweep
/// over the number of explored nodes).
std::string DescendantQueryBounded(int64_t source, int64_t max_hops);

/// Connected components by minimum-label propagation (one of the
/// aggregation-based algorithms §II-B lists as inexpressible with
/// recursive CTEs). Expects a symmetrized edge table `edges_sym(src,
/// dst, weight)` (labels must flow against edge direction too).
std::string ConnectedComponentsQuery();

/// AsyncP priority queries (paper §V-E): PageRank prioritizes partitions
/// by accumulated delta; SSSP/DQ by smallest tentative delta.
std::string PageRankPriorityQuery();
std::string SsspPriorityQuery();   // tentative-distance CTEs (Distance col)
std::string DqPriorityQuery();     // hop-count CTEs (Hops column)

}  // namespace sqloop::core::workloads
