// The parallel execution engine (paper §V): hash-partitions the CTE table,
// re-defines R as a view over the partition union, materializes the
// constant part of the join (Rmjoin), and drives per-partition
// Compute/Gather tasks over a pool of worker connections under the Sync,
// Async, or Prioritized-Async scheduling policies.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/analysis.h"
#include "core/checkpoint.h"
#include "core/observer.h"
#include "core/options.h"
#include "core/resilience.h"
#include "core/termination.h"
#include "core/translator.h"
#include "dbc/connection.h"

namespace sqloop::core {

class ParallelRunner {
 public:
  /// `master` drives DDL, termination checks, and the final query; worker
  /// connections are opened against `url` (one per thread, §V-B). `schema`
  /// is the inferred CTE schema (key first, already widened). `ctx` bundles
  /// the per-call options with the stats/telemetry sinks; all referenced
  /// objects must outlive the runner.
  ParallelRunner(std::string url, dbc::Connection& master,
                 const sql::WithClause& with, const CteAnalysis& analysis,
                 std::vector<sql::ColumnDef> schema,
                 const ExecutionContext& ctx);

  dbc::ResultSet Run();

 private:
  /// Cross-attempt progress of one Compute task, so a retry never repeats
  /// a completed piece: once the message phase is done it is skipped (a
  /// second RegisterMessageTable would double-count SUM deltas), and a
  /// partial message table left by a failed attempt is dropped before the
  /// next one (DESIGN.md "Failure model & resilience").
  struct ComputeAttempt {
    bool messages_done = false;
    std::string orphan;  // created but not yet registered/dropped
  };

  /// Whether a finished Compute/Gather pair re-measures its priority.
  enum class RefreshMode {
    kNone,
    kAlways,        // Async under AsyncP mode: refresh unconditionally
    kIfProductive,  // AsyncP continuous: refresh only if the pair moved data
  };

  /// One unit of schedulable work plus its progress. A spec survives its
  /// worker: when a worker exhausts its retry budget the spec — with the
  /// completed pieces already cleared — moves to `abandoned_` and the
  /// master re-executes only what is left.
  struct TaskSpec {
    size_t partition = 0;
    bool do_gather = false;
    bool do_compute = false;
    RefreshMode refresh = RefreshMode::kNone;
    uint64_t updates = 0;  // accumulated across pieces (feeds kIfProductive)
    int bounces = 0;       // rebalance hops off retired workers (bounded)
    ComputeAttempt compute;
  };

  // --- setup / teardown -------------------------------------------------
  void DropLeftovers();
  void CreatePartitions();
  void CreateUnionView();
  void MaterializeConstantJoins();  // Rmjoin (§V-B)
  void BuildTaskSql();
  void Cleanup();

  // --- checkpointing / recovery (DESIGN.md "Checkpointing & recovery") ---
  /// Derives the job id and, under `resume`, probes for the newest valid
  /// checkpoint of this exact job (same query, mode, partition count).
  void SetupCheckpointing();
  /// Re-creates the partition and pending message tables from the resume
  /// checkpoint and reloads the registry / priority / scheduler state.
  /// Returns false (fresh start) when there is nothing to resume.
  bool RestoreFromCheckpoint();
  /// Dumps every partition table plus the not-yet-dropped message tables
  /// and seals the round's manifest. Runs at a round border (pool idle),
  /// so the captured state is exactly what the next round starts from.
  void WriteCheckpoint(int64_t round, uint64_t dispatch_seq,
                       const std::vector<uint64_t>& last_dispatch);
  /// CHECK TABLE over every partition table (batched on the master), at
  /// the scrub cadence point just before the checkpoint write. A content
  /// checksum mismatch surfaces as IntegrityError.
  void ScrubPartitions();

  // --- resilience (DESIGN.md "Failure model & resilience") ---------------
  /// master_.Execute / master_.ExecuteBatch under the retry policy.
  void MasterExecute(const std::string& sql);
  void MasterExecuteBatch();
  /// Runs the spec's remaining pieces on `conn`, each piece under the
  /// retry policy, clearing piece flags as they complete. Worker threads
  /// and the master (DrainAbandoned) both use it.
  void RunSpec(dbc::Connection& conn, TaskSpec& spec);
  void AbandonTask(TaskSpec spec);
  /// Master-side: re-executes every abandoned spec on the master
  /// connection. Called only while the pool is idle (phase/round borders).
  void DrainAbandoned();
  void FlushResilienceStats();

  // --- tasks (§V-C) -----------------------------------------------------
  uint64_t RunCompute(size_t partition, dbc::Connection& conn,
                      ComputeAttempt& attempt);
  uint64_t RunGather(size_t partition, dbc::Connection& conn);
  /// Task wrappers: time the task into the per-round accumulators and emit
  /// a TaskSpan (telemetry-enabled builds only).
  uint64_t TimedCompute(size_t partition, dbc::Connection& conn,
                        ComputeAttempt& attempt);
  uint64_t TimedGather(size_t partition, dbc::Connection& conn);

  // --- telemetry ----------------------------------------------------------
  /// Records one attributed unit of work; no-op without recorder/observer.
  void EmitSpan(telemetry::SpanKind kind, int64_t partition, double start,
                double duration, uint64_t updates);
  /// Closes the round's accounting window: turns the accumulated task
  /// counters into an IterationStats delta, records it, and fires the
  /// observer. Runs on the master thread while the pool is idle.
  void FinishRound(int64_t round, uint64_t updates, double round_start,
                   double barrier_wait);

  // --- message registry (the paper's "global data structure") ------------
  // `targets` lists the partitions the table's rows belong to (empty =
  // unknown, treat as "all"); AsyncP uses it to skip idle partitions
  // without missing messages addressed to them.
  // `source` is the producing partition; UnreadMessages orders the union
  // arms by it so the gather's accumulation order — and therefore every
  // floating-point SUM — is independent of which worker registered first.
  void AddPendingOrphan(const std::string& name);
  void ClearPendingOrphan(const std::string& name);
  void RegisterMessageTable(std::string name, size_t source,
                            std::vector<size_t> targets);
  std::pair<std::vector<std::string>, size_t> UnreadMessages(size_t partition);
  bool HasUnreadTargetedMessages(size_t partition);
  void MarkConsumed(size_t partition, size_t upto);
  void DropFullyConsumedMessages();  // master-side, between rounds

  // --- scheduling (§V-E) --------------------------------------------------
  void RunRounds();
  std::vector<size_t> PartitionOrderForRound();
  void RefreshPriority(size_t partition, dbc::Connection& conn);
  /// True if the partition currently has productive work: a usable
  /// priority, pending messages addressed to it, or no measurement yet.
  /// Fills `rank` with the dispatch priority (already oriented so larger
  /// runs first).
  bool PartitionEligible(size_t partition, double* rank);

  std::string PartitionTable(size_t k) const;
  std::string MjoinTable(size_t k) const;

  const std::string url_;
  dbc::Connection& master_;
  const sql::WithClause& with_;
  const CteAnalysis& analysis_;
  const SqloopOptions& options_;
  RunStats& stats_;
  telemetry::Recorder* const recorder_;  // may be null
  ExecutionObserver* const observer_;    // may be null
  RoundGate* const gate_;                // may be null (non-service runs)
  ThreadPool* const shared_pool_;        // may be null (private pool)
  const Stopwatch run_watch_;            // span times are offsets from this
  Translator translator_;
  std::vector<sql::ColumnDef> schema_;
  std::vector<sql::ColumnDef> message_schema_;
  TerminationChecker checker_;

  size_t partitions_;
  std::string base_;  // folded CTE name; also the union view's name

  // Pre-rendered per-partition SQL.
  std::vector<std::string> message_select_;  // SELECT feeding message tables
  // Combined own-column update + delta reset, applied after messaging
  // (one statement, one partition scan).
  std::vector<std::string> update_sql_;
  std::string create_message_columns_;       // "(id BIGINT, val ...)" body

  // Message registry.
  std::mutex registry_mutex_;
  std::vector<std::string> message_tables_;
  std::vector<size_t> message_sources_;  // producing partition, per table
  std::vector<std::vector<size_t>> message_targets_;  // sorted; empty = all
  std::vector<size_t> consumed_;  // per partition: index into message_tables_
  size_t dropped_prefix_ = 0;
  std::atomic<uint64_t> message_seq_{0};
  // Message tables created but not yet registered (or dropped): if a
  // fatal error aborts the creating task, Cleanup drops these so they
  // cannot collide with a resumed incarnation reusing the same seq.
  std::set<std::string> pending_orphans_;

  // AsyncP priorities (NaN optional = unknown; nullopt = "no work").
  std::mutex priority_mutex_;
  std::vector<std::optional<double>> priorities_;
  std::vector<bool> priority_known_;

  // Per-round accounting. The `_ns` accumulators hold summed task wall time
  // in nanoseconds; FinishRound() snapshots running totals into `prev_` to
  // produce per-round deltas.
  std::atomic<uint64_t> round_updates_{0};
  std::atomic<uint64_t> compute_tasks_{0};
  std::atomic<uint64_t> gather_tasks_{0};
  std::atomic<uint64_t> message_count_{0};
  std::atomic<uint64_t> messages_consumed_{0};
  std::atomic<uint64_t> compute_ns_{0};
  std::atomic<uint64_t> gather_ns_{0};
  std::atomic<int64_t> current_round_{0};  // read by workers for span.round
  uint64_t prev_compute_tasks_ = 0;
  uint64_t prev_gather_tasks_ = 0;
  uint64_t prev_messages_produced_ = 0;
  uint64_t prev_messages_consumed_ = 0;
  uint64_t prev_compute_ns_ = 0;
  uint64_t prev_gather_ns_ = 0;
  uint64_t prev_skipped_ = 0;

  // First task failure, rethrown on the master thread.
  std::mutex failure_mutex_;
  std::exception_ptr failure_;

  // Resilience state. The retrier is shared by the master and all workers;
  // the degradation ladder tracks retired workers and the tasks they
  // abandoned (drained by the master at phase/round borders).
  Retrier retrier_;
  std::mutex degrade_mutex_;
  std::vector<char> worker_dead_;
  size_t live_workers_ = 0;
  std::vector<TaskSpec> abandoned_;
  std::atomic<uint64_t> workers_retired_{0};
  uint64_t degraded_rounds_ = 0;   // master-thread only
  bool round_degraded_ = false;    // master-thread only, reset per round
  // Tasks bounced off a retired worker onto a surviving one (first bounce
  // per task), and straggler-speculation outcomes (tasks == wins + losses).
  std::atomic<uint64_t> rebalanced_{0};
  std::atomic<uint64_t> speculative_tasks_{0};
  std::atomic<uint64_t> speculative_wins_{0};
  std::atomic<uint64_t> speculative_losses_{0};

  // Checkpoint / recovery state (set up in Run before any DDL).
  std::unique_ptr<CheckpointManager> ckpt_;
  std::optional<CheckpointManifest> resume_from_;
  int64_t resume_round_ = 0;  // 0 = fresh run
  uint64_t resume_dispatch_seq_ = 0;
  std::vector<uint64_t> resume_last_dispatch_;
};

}  // namespace sqloop::core
