// The parallel execution engine (paper §V): hash-partitions the CTE table,
// re-defines R as a view over the partition union, materializes the
// constant part of the join (Rmjoin), and drives per-partition
// Compute/Gather tasks over a pool of worker connections under the Sync,
// Async, or Prioritized-Async scheduling policies.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/options.h"
#include "core/termination.h"
#include "core/translator.h"
#include "dbc/connection.h"

namespace sqloop::core {

class ParallelRunner {
 public:
  /// `master` drives DDL, termination checks, and the final query; worker
  /// connections are opened against `url` (one per thread, §V-B). `schema`
  /// is the inferred CTE schema (key first, already widened).
  ParallelRunner(std::string url, dbc::Connection& master,
                 const sql::WithClause& with, const CteAnalysis& analysis,
                 std::vector<sql::ColumnDef> schema,
                 const SqloopOptions& options, RunStats& stats);

  dbc::ResultSet Run();

 private:
  // --- setup / teardown -------------------------------------------------
  void DropLeftovers();
  void CreatePartitions();
  void CreateUnionView();
  void MaterializeConstantJoins();  // Rmjoin (§V-B)
  void BuildTaskSql();
  void Cleanup();

  // --- tasks (§V-C) -----------------------------------------------------
  uint64_t RunCompute(size_t partition, dbc::Connection& conn);
  uint64_t RunGather(size_t partition, dbc::Connection& conn);

  // --- message registry (the paper's "global data structure") ------------
  // `targets` lists the partitions the table's rows belong to (empty =
  // unknown, treat as "all"); AsyncP uses it to skip idle partitions
  // without missing messages addressed to them.
  void RegisterMessageTable(std::string name, std::vector<size_t> targets);
  std::pair<std::vector<std::string>, size_t> UnreadMessages(size_t partition);
  bool HasUnreadTargetedMessages(size_t partition);
  void MarkConsumed(size_t partition, size_t upto);
  void DropFullyConsumedMessages();  // master-side, between rounds

  // --- scheduling (§V-E) --------------------------------------------------
  void RunRounds();
  std::vector<size_t> PartitionOrderForRound();
  void RefreshPriority(size_t partition, dbc::Connection& conn);
  /// True if the partition currently has productive work: a usable
  /// priority, pending messages addressed to it, or no measurement yet.
  /// Fills `rank` with the dispatch priority (already oriented so larger
  /// runs first).
  bool PartitionEligible(size_t partition, double* rank);

  std::string PartitionTable(size_t k) const;
  std::string MjoinTable(size_t k) const;

  const std::string url_;
  dbc::Connection& master_;
  const sql::WithClause& with_;
  const CteAnalysis& analysis_;
  const SqloopOptions& options_;
  RunStats& stats_;
  Translator translator_;
  std::vector<sql::ColumnDef> schema_;
  std::vector<sql::ColumnDef> message_schema_;
  TerminationChecker checker_;

  size_t partitions_;
  std::string base_;  // folded CTE name; also the union view's name

  // Pre-rendered per-partition SQL.
  std::vector<std::string> message_select_;  // SELECT feeding message tables
  // Combined own-column update + delta reset, applied after messaging
  // (one statement, one partition scan).
  std::vector<std::string> update_sql_;
  std::string create_message_columns_;       // "(id BIGINT, val ...)" body

  // Message registry.
  std::mutex registry_mutex_;
  std::vector<std::string> message_tables_;
  std::vector<std::vector<size_t>> message_targets_;  // sorted; empty = all
  std::vector<size_t> consumed_;  // per partition: index into message_tables_
  size_t dropped_prefix_ = 0;
  std::atomic<uint64_t> message_seq_{0};

  // AsyncP priorities (NaN optional = unknown; nullopt = "no work").
  std::mutex priority_mutex_;
  std::vector<std::optional<double>> priorities_;
  std::vector<bool> priority_known_;

  // Per-round accounting.
  std::atomic<uint64_t> round_updates_{0};
  std::atomic<uint64_t> compute_tasks_{0};
  std::atomic<uint64_t> gather_tasks_{0};
  std::atomic<uint64_t> message_count_{0};

  // First task failure, rethrown on the master thread.
  std::mutex failure_mutex_;
  std::exception_ptr failure_;
};

}  // namespace sqloop::core
