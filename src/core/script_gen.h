// The hand-written-SQL-script baseline of the paper's §VI-D comparison:
// what a user without SQLoop would submit — a long, engine-specific script
// that manages tables, runs the iteration body, and merges results, one
// statement at a time over a single connection, with none of SQLoop's
// parallelization, join materialization, or indexing.
#pragma once

#include <string>

#include "core/options.h"
#include "dbc/connection.h"
#include "sql/ast.h"

namespace sqloop::core {

/// Renders the full script text for `iterations` unrolled iterations of
/// the CTE's body — the artifact a user would hand-write ("SQL scripts in
/// most cases were more than 200 lines", §VI-D). One statement per line.
std::string GenerateIterativeScript(const sql::WithClause& with,
                                    Dialect dialect, int64_t iterations);

/// Executes the script-equivalent computation on one connection, honoring
/// the CTE's UNTIL condition the way a user's client-side loop would.
/// Fills `stats` like the other executors.
dbc::ResultSet RunScriptBaseline(dbc::Connection& connection,
                                 const sql::WithClause& with,
                                 const SqloopOptions& options,
                                 RunStats& stats);

}  // namespace sqloop::core
