// Query analysis (paper §V-A): decides whether an iterative CTE can be
// parallelized, and extracts the pieces the parallel engine needs — the
// supported aggregate, the self-join, and the Ridelta column.
//
// The canonical parallelizable shape (both paper examples fit it):
//
//   SELECT R.key,                          -- the Rid column, echoed back
//          <expr over R columns>, ...      -- "own" columns (rank, distance)
//          <Outer(AGG(arg over Self/Mid))> -- the Ridelta column
//   FROM R
//     LEFT JOIN <mid> AS M ON R.key = M.<to_key>
//     LEFT JOIN R AS Self ON Self.key = M.<from_key>
//   [WHERE <predicate over Self/M columns>]
//   GROUP BY R.key
//
// Anything else falls back to the single-threaded executor with a recorded
// reason (the paper does the same: unsupported aggregates run the §IV-B
// path).
#pragma once

#include <string>
#include <vector>

#include "sql/ast.h"

namespace sqloop::core {

struct CteAnalysis {
  bool parallelizable = false;
  std::string reason;  // set when not parallelizable

  // CTE basics.
  std::string cte_name;
  std::vector<std::string> columns;  // declared column names (folded)
  std::string key_column;            // columns[0] — the Rid assumption §III-A

  // Aggregate (paper's whitelist: SUM MIN MAX COUNT AVG).
  sql::AggFunc aggregate = sql::AggFunc::kSum;
  bool has_aggregate = false;

  // Join structure.
  std::string primary_alias;    // first reference of R in Ri's FROM
  std::string self_alias;       // second reference of R (the self-join)
  std::string mid_table;        // the relation bridging them (e.g. edges)
  std::string mid_alias;
  std::string mid_to_key;       // mid column joined to R.key   (e.g. dst)
  std::string mid_from_key;     // mid column joined to Self.key (e.g. src)
  std::vector<std::string> mid_columns_used;  // mid columns Ri references

  // The Ridelta column (paper §V-A "columns that exchange information").
  int delta_column_index = -1;       // position in `columns`
  std::string delta_column;          // its name
  const sql::Expr* delta_expr = nullptr;  // Outer(AGG(arg)) — borrowed
  const sql::Expr* where = nullptr;       // Ri's WHERE — borrowed

  // "Own" columns updated from the partition's own rows only.
  struct OwnColumn {
    int column_index = -1;
    std::string name;
    const sql::Expr* expr = nullptr;  // borrowed from the CTE AST
  };
  std::vector<OwnColumn> own_columns;
};

/// Analyzes the iterative CTE. Never throws for "merely unsupported"
/// shapes — those return parallelizable=false with a reason. Throws
/// AnalysisError only for malformed CTEs (no columns, no step).
CteAnalysis AnalyzeIterativeCte(const sql::WithClause& with);

}  // namespace sqloop::core
