// Statement execution, decoupled from the SqLoop facade so the job server
// (src/server) can drive the same code path: dialect translation and
// forwarding for regular SQL, client-side emulation for recursive CTEs on
// engines without native support, and the single-threaded / partitioned
// parallel loops for iterative CTEs.
#pragma once

#include <string>

#include "core/observer.h"
#include "dbc/connection.h"
#include "sql/ast.h"

namespace sqloop::core {

/// True when `stmt` must run through SQLoop's client-side loops — an
/// iterative CTE, or a recursive CTE the engine cannot run natively —
/// rather than being translated and forwarded in one round trip. This is
/// the routing predicate of the service facade: only statements needing a
/// run become jobs; plain SQL stays on the caller's own connection (and
/// inside its transaction).
bool NeedsIterativeRun(const sql::Statement& stmt,
                       const dbc::Connection& conn);

/// Executes one statement. `master` drives DDL/termination/final queries;
/// worker connections (parallel modes) open against `url`, which also
/// supplies URL-level checkpoint defaults. `ctx` carries the options,
/// stats/telemetry sinks, and — for service runs — the round gate and
/// shared worker pool. The iterative path performs parallelizability
/// analysis and falls back to the single-threaded loop when needed.
dbc::ResultSet RunStatement(const std::string& url, dbc::Connection& master,
                            const sql::Statement& stmt,
                            const ExecutionContext& ctx);

}  // namespace sqloop::core
