#include "core/termination.h"

#include "common/error.h"
#include "minidb/schema.h"

namespace sqloop::core {

TerminationChecker::TerminationChecker(const sql::Termination& tc,
                                       const Translator& translator,
                                       std::string relation)
    : tc_(tc.Clone()),
      translator_(translator),
      relation_(minidb::FoldIdentifier(relation)),
      delta_table_(relation_ + "_delta") {
  if (tc_.probe) {
    probe_sql_ = translator_.Render(*tc_.probe);
    count_all_sql_ = "SELECT COUNT(*) FROM " + translator_.Quote(relation_);
  }
}

std::vector<std::string> TerminationChecker::SnapshotSql(
    const std::vector<sql::ColumnDef>& schema) const {
  if (!tc_.delta) return {};
  return {
      translator_.DropTableSql(delta_table_),
      translator_.CreateTableSql(delta_table_, schema,
                                 /*primary_key_index=*/0),
      "INSERT INTO " + translator_.Quote(delta_table_) + " SELECT * FROM " +
          translator_.Quote(relation_),
  };
}

dbc::PreparedStatement& TerminationChecker::Prepared(
    dbc::Connection& connection, std::unique_ptr<dbc::PreparedStatement>& slot,
    const std::string& sql) const {
  if (prepared_on_ != &connection) {
    probe_stmt_.reset();
    count_stmt_.reset();
    prepared_on_ = &connection;
  }
  if (!slot) {
    slot = std::make_unique<dbc::PreparedStatement>(connection.Prepare(sql));
  }
  return *slot;
}

bool TerminationChecker::Satisfied(dbc::Connection& connection,
                                   int64_t iteration,
                                   uint64_t updates) const {
  switch (tc_.kind) {
    case sql::Termination::Kind::kIterations:
      return iteration >= tc_.count;
    case sql::Termination::Kind::kUpdates:
      // "UNTIL n UPDATES" stops once Ri updates no more than n rows; the
      // paper's own Example 3 uses `UNTIL 0 UPDATES` with this meaning.
      return updates <= static_cast<uint64_t>(tc_.count);
    case sql::Termination::Kind::kProbeAll: {
      const auto probe =
          Prepared(connection, probe_stmt_, probe_sql_).ExecuteQuery();
      const auto all =
          Prepared(connection, count_stmt_, count_all_sql_).ExecuteQuery();
      return static_cast<int64_t>(probe.row_count()) ==
             all.ScalarAt().as_int();
    }
    case sql::Termination::Kind::kProbeAny:
      return !Prepared(connection, probe_stmt_, probe_sql_)
                  .ExecuteQuery()
                  .empty();
    case sql::Termination::Kind::kProbeCompare: {
      const auto probe =
          Prepared(connection, probe_stmt_, probe_sql_).ExecuteQuery();
      if (probe.row_count() != 1 || probe.rows[0].size() != 1) {
        throw ExecutionError(
            "a compared UNTIL expression must return exactly one value "
            "(got " + std::to_string(probe.row_count()) + " rows)");
      }
      const Value& value = probe.rows[0][0];
      if (value.is_null()) return false;
      const int cmp = Value::Compare(value, tc_.bound);
      switch (tc_.comparator) {
        case '<':
          return cmp < 0;
        case '=':
          return cmp == 0;
        case '>':
          return cmp > 0;
        default:
          throw UsageError("unknown UNTIL comparator");
      }
    }
  }
  throw UsageError("unknown termination kind");
}

}  // namespace sqloop::core
