#include "core/translator.h"

#include "minidb/schema.h"

namespace sqloop::core {

using minidb::FoldIdentifier;

std::string Translator::CreateTableSql(
    const std::string& name, const std::vector<sql::ColumnDef>& columns,
    int primary_key_index) const {
  sql::Statement stmt;
  stmt.kind = sql::StatementKind::kCreateTable;
  stmt.table_name = name;
  stmt.columns = columns;
  stmt.primary_key_index = primary_key_index;
  // SQLoop's scratch tables are transient: skip logging on every engine
  // (UNLOGGED on postgres, ENGINE=MyISAM on the MySQL family — the same
  // configuration the paper's evaluation uses).
  stmt.unlogged = true;
  return Render(stmt);
}

std::string Translator::DropTableSql(const std::string& name,
                                     bool if_exists) const {
  sql::Statement stmt;
  stmt.kind = sql::StatementKind::kDropTable;
  stmt.table_name = name;
  stmt.if_exists = if_exists;
  return Render(stmt);
}

namespace {

void RenameInTableRef(
    sql::TableRef& ref,
    const std::unordered_map<std::string, std::string>& renames) {
  if (ref.kind != sql::TableRefKind::kBase) return;
  const auto it = renames.find(FoldIdentifier(ref.table_name));
  if (it == renames.end()) return;
  if (ref.alias.empty() || FoldIdentifier(ref.alias) ==
                               FoldIdentifier(ref.table_name)) {
    // Keep the old name visible as the alias so qualified column
    // references in the query still resolve.
    ref.alias = ref.table_name;
  }
  ref.table_name = it->second;
}

}  // namespace

void RenameBaseTables(
    sql::SelectStmt& select,
    const std::unordered_map<std::string, std::string>& renames) {
  for (auto& core : select.cores) {
    if (core.from) {
      sql::VisitTableRefsMutable(
          *core.from, [&](sql::TableRef& ref) { RenameInTableRef(ref, renames); });
    }
  }
}

void RequalifyColumns(sql::Expr& expr, const std::string& from,
                      const std::string& to) {
  const std::string folded_from = FoldIdentifier(from);
  sql::VisitExprMutable(expr, [&](sql::Expr& node) {
    if (node.kind == sql::ExprKind::kColumnRef &&
        FoldIdentifier(node.qualifier) == folded_from) {
      node.qualifier = to;
    }
  });
}

sql::ExprPtr SubstituteAggregate(const sql::Expr& expr, const sql::Expr& agg,
                                 const sql::Expr& replacement) {
  if (expr.kind == sql::ExprKind::kAggregate && sql::ExprEquals(expr, agg)) {
    return replacement.Clone();
  }
  auto out = expr.Clone();
  const std::function<void(sql::ExprPtr&)> descend = [&](sql::ExprPtr& child) {
    if (child) child = SubstituteAggregate(*child, agg, replacement);
  };
  descend(out->left);
  descend(out->right);
  for (auto& arg : out->args) arg = SubstituteAggregate(*arg, agg, replacement);
  descend(out->case_operand);
  for (auto& when : out->whens) {
    when.condition = SubstituteAggregate(*when.condition, agg, replacement);
    when.result = SubstituteAggregate(*when.result, agg, replacement);
  }
  descend(out->else_expr);
  return out;
}

}  // namespace sqloop::core
