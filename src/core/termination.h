// Evaluation of the UNTIL termination conditions of Table I. SQLoop checks
// Tc itself with ordinary SQL against the materialized CTE relation
// (a table in the single-threaded path, the union view in the parallel
// paths), so the same checker serves every executor.
#pragma once

#include <memory>
#include <string>

#include "core/translator.h"
#include "dbc/connection.h"
#include "dbc/prepared_statement.h"
#include "sql/ast.h"

namespace sqloop::core {

class TerminationChecker {
 public:
  /// `relation` is where R is readable (table or view name). DELTA probes
  /// read the previous iteration from `<relation>_delta`, which the
  /// executor refreshes via SnapshotSql() before every iteration.
  TerminationChecker(const sql::Termination& tc, const Translator& translator,
                     std::string relation);

  /// Whether the executor must maintain the `<relation>_delta` snapshot.
  bool needs_delta_snapshot() const noexcept { return tc_.delta; }
  const std::string& delta_table() const noexcept { return delta_table_; }

  /// Statements refreshing the delta snapshot (run before the iteration).
  std::vector<std::string> SnapshotSql(
      const std::vector<sql::ColumnDef>& schema) const;

  /// True when the query should stop. `iteration` is 1-based and counts
  /// completed iterations; `updates` is the row-update count of the
  /// iteration that just finished.
  bool Satisfied(dbc::Connection& connection, int64_t iteration,
                 uint64_t updates) const;

 private:
  /// Lazily prepares `sql` on `connection` into `slot`. The probe runs
  /// every round, so it is compiled exactly once per run; handles are
  /// re-prepared when a different connection shows up (e.g. a fresh run).
  dbc::PreparedStatement& Prepared(
      dbc::Connection& connection,
      std::unique_ptr<dbc::PreparedStatement>& slot,
      const std::string& sql) const;

  sql::Termination tc_;
  Translator translator_;
  std::string relation_;
  std::string delta_table_;
  std::string probe_sql_;      // rendered probe, when tc has one
  std::string count_all_sql_;  // SELECT COUNT(*) FROM <relation>
  // Prepared-once probe handles, keyed to the connection they were
  // compiled on. Mutable: preparing is a caching detail of const
  // Satisfied(). Reopen() of the same connection keeps them valid.
  mutable std::unique_ptr<dbc::PreparedStatement> probe_stmt_;
  mutable std::unique_ptr<dbc::PreparedStatement> count_stmt_;
  mutable dbc::Connection* prepared_on_ = nullptr;
};

}  // namespace sqloop::core
