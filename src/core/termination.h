// Evaluation of the UNTIL termination conditions of Table I. SQLoop checks
// Tc itself with ordinary SQL against the materialized CTE relation
// (a table in the single-threaded path, the union view in the parallel
// paths), so the same checker serves every executor.
#pragma once

#include <string>

#include "core/translator.h"
#include "dbc/connection.h"
#include "sql/ast.h"

namespace sqloop::core {

class TerminationChecker {
 public:
  /// `relation` is where R is readable (table or view name). DELTA probes
  /// read the previous iteration from `<relation>_delta`, which the
  /// executor refreshes via SnapshotSql() before every iteration.
  TerminationChecker(const sql::Termination& tc, const Translator& translator,
                     std::string relation);

  /// Whether the executor must maintain the `<relation>_delta` snapshot.
  bool needs_delta_snapshot() const noexcept { return tc_.delta; }
  const std::string& delta_table() const noexcept { return delta_table_; }

  /// Statements refreshing the delta snapshot (run before the iteration).
  std::vector<std::string> SnapshotSql(
      const std::vector<sql::ColumnDef>& schema) const;

  /// True when the query should stop. `iteration` is 1-based and counts
  /// completed iterations; `updates` is the row-update count of the
  /// iteration that just finished.
  bool Satisfied(dbc::Connection& connection, int64_t iteration,
                 uint64_t updates) const;

 private:
  sql::Termination tc_;
  Translator translator_;
  std::string relation_;
  std::string delta_table_;
  std::string probe_sql_;      // rendered probe, when tc has one
  std::string count_all_sql_;  // SELECT COUNT(*) FROM <relation>
};

}  // namespace sqloop::core
