// Fixed-size worker pool. The SQLoop parallel engine submits Compute/Gather
// tasks here; each worker owns one database connection for its lifetime
// (the paper's "thread pool where each thread opens a new connection").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sqloop {

class ThreadPool {
 public:
  /// Spawns `worker_count` threads. If `on_worker_start` is provided it runs
  /// once on each worker before any task (used to open per-worker
  /// connections); its argument is the worker index in [0, worker_count).
  /// The constructor returns only after every worker has completed its
  /// start hook, so the hooks' side effects are settled for the caller.
  explicit ThreadPool(size_t worker_count,
                      std::function<void(size_t)> on_worker_start = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task. The task receives the index of the worker running it,
  /// so it can look up that worker's connection.
  std::future<void> Submit(std::function<void(size_t)> task);

  /// Blocks until every submitted task has finished and the queue is empty.
  void WaitIdle();

  size_t worker_count() const noexcept { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker_index,
                  const std::function<void(size_t)>& on_worker_start);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::condition_variable started_cv_;
  std::deque<std::packaged_task<void(size_t)>> queue_;
  size_t active_tasks_ = 0;
  size_t started_ = 0;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

/// A job's view of a shared ThreadPool. Submit forwards to the pool;
/// WaitIdle blocks until every task submitted through THIS group has
/// finished — not until the whole pool drains — so many concurrent jobs
/// (the service's multi-tenant case) can barrier independently while their
/// tasks interleave in one worker set. The group must outlive its tasks;
/// the destructor waits for them.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { WaitIdle(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues a task on the underlying pool and counts it against this
  /// group. Like ThreadPool::Submit, the task receives the worker index.
  void Submit(std::function<void(size_t)> task);

  /// Blocks until every task submitted through this group has finished.
  /// Other groups' tasks are not waited for.
  void WaitIdle();

  size_t worker_count() const noexcept { return pool_.worker_count(); }

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable idle_;
  size_t pending_ = 0;
};

}  // namespace sqloop
