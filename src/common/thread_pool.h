// Fixed-size worker pool. The SQLoop parallel engine submits Compute/Gather
// tasks here; each worker owns one database connection for its lifetime
// (the paper's "thread pool where each thread opens a new connection").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sqloop {

class ThreadPool {
 public:
  /// Spawns `worker_count` threads. If `on_worker_start` is provided it runs
  /// once on each worker before any task (used to open per-worker
  /// connections); its argument is the worker index in [0, worker_count).
  /// The constructor returns only after every worker has completed its
  /// start hook, so the hooks' side effects are settled for the caller.
  explicit ThreadPool(size_t worker_count,
                      std::function<void(size_t)> on_worker_start = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task. The task receives the index of the worker running it,
  /// so it can look up that worker's connection.
  std::future<void> Submit(std::function<void(size_t)> task);

  /// Blocks until every submitted task has finished and the queue is empty.
  void WaitIdle();

  size_t worker_count() const noexcept { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker_index,
                  const std::function<void(size_t)>& on_worker_start);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::condition_variable started_cv_;
  std::deque<std::packaged_task<void(size_t)>> queue_;
  size_t active_tasks_ = 0;
  size_t started_ = 0;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace sqloop
