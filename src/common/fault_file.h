// FaultFile: the durability I/O shim every dump/checkpoint publish routes
// through, and the process-global crash-point injector behind it.
//
// All persistent files in SQLoop (minidb table dumps, checkpoint manifests)
// are published the same way: build the full payload in memory, write it to
// `<path>.tmp`, flush, then atomically rename over the final path. That
// sequence is exactly three fault-able operations — write, fsync, rename —
// and `FaultFile::PublishFile` is the single choke point that performs them,
// counting each one against an installed `CrashPlan`.
//
// A crash plan names the Nth operation of one kind (1-based, process-wide,
// 0 = never) at which the "process dies". Dying is simulated by throwing
// `CrashPointError` after leaving the disk in the state a real power loss
// would: a torn prefix of the tmp file, a complete-but-unrenamed tmp file,
// or (with `torn_writes` on a rename crash) a torn prefix at the *final*
// path, as a non-atomic filesystem would produce. `flip_bit` additionally
// flips one seeded bit in whatever bytes survive, modelling post-crash
// media corruption. Every choice — how many bytes survive, which bit flips —
// is drawn deterministically from (seed, operation ordinal), so a crash
// point reproduces exactly under every execution mode and sanitizer.
//
// Latching: like `fault_kill_at_round`, a plan fires at most once. The
// resume run re-installs the identical plan when it reopens the same URL;
// `InstallPlan` recognizes it (operator==) and keeps the fired latch, so
// recovery proceeds instead of crashing forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sqloop {

/// Deterministic crash-point plan for the durability I/O shim. Parsed from
/// the `fault_crash_at_*` / `fault_torn_writes` / `fault_flip_bit` URL
/// knobs; installed process-wide via FaultFile::InstallPlan.
struct CrashPlan {
  int64_t crash_at_write = 0;   ///< die during the Nth payload write (1-based)
  int64_t crash_at_fsync = 0;   ///< die during the Nth flush (1-based)
  int64_t crash_at_rename = 0;  ///< die during the Nth rename (1-based)
  bool torn_writes = false;     ///< crashes leave a torn prefix, not nothing
  bool flip_bit = false;        ///< flip one seeded bit in surviving bytes
  uint64_t seed = 42;           ///< drives every torn-length/bit choice

  bool armed() const noexcept {
    return crash_at_write > 0 || crash_at_fsync > 0 || crash_at_rename > 0;
  }

  friend bool operator==(const CrashPlan& a, const CrashPlan& b) noexcept {
    return a.crash_at_write == b.crash_at_write &&
           a.crash_at_fsync == b.crash_at_fsync &&
           a.crash_at_rename == b.crash_at_rename &&
           a.torn_writes == b.torn_writes && a.flip_bit == b.flip_bit &&
           a.seed == b.seed;
  }
};

/// Lifetime operation counters for the shim, for tests to enumerate how
/// many crash points one workload exposes (run once cleanly, read the
/// deltas, then iterate `fault_crash_at_write=1..writes` and so on).
struct FaultFileCounters {
  uint64_t writes = 0;
  uint64_t fsyncs = 0;
  uint64_t renames = 0;
  uint64_t crashes = 0;
};

class FaultFile {
 public:
  /// Atomically publishes `size` bytes at `path` via `<path>.tmp` + rename,
  /// consulting the installed crash plan at each of the three steps.
  /// `what` names the artifact for error messages ("dump file",
  /// "checkpoint manifest"). Throws CrashPointError when a crash point
  /// fires and ExecutionError on real I/O failure.
  static void PublishFile(const std::string& path, const char* data,
                          size_t size, const std::string& what);

  /// Installs `plan` process-wide. Installing a plan equal to the current
  /// one is a no-op that preserves counters and the fired latch (so a
  /// resume run reopening the same crash-knob URL survives); a different
  /// plan replaces it, resets counters, and clears the latch.
  static void InstallPlan(const CrashPlan& plan);

  /// Removes any installed plan and clears counters and the latch.
  static void ClearPlan();

  static CrashPlan plan();
  static FaultFileCounters counters();
  static void ResetCounters();
};

}  // namespace sqloop
