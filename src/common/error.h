// Error types shared across all SQLoop modules.
//
// The library reports failures with exceptions (RAII everywhere makes this
// safe); each subsystem throws a subclass of `sqloop::Error` so callers can
// distinguish user mistakes (bad SQL) from engine-side faults.
//
// The hierarchy also encodes the resilience layer's transient-vs-fatal
// classification: everything under `TransientError` is retryable (the
// statement or connection attempt can be repeated without changing the
// query's result), everything else is fatal and aborts the run immediately.
// `IsTransientError` is the single classification point the retry machinery
// uses; tests/common/error_test.cpp pins the full table.
#pragma once

#include <stdexcept>
#include <string>

namespace sqloop {

/// Root of the SQLoop exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// The submitted SQL text could not be tokenized or parsed. Fatal.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& message)
      : Error("parse error: " + message) {}
};

/// The statement parsed but refers to unknown tables/columns, has a type
/// mismatch, or violates a semantic rule (e.g. aggregate misuse). Fatal.
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& message)
      : Error("analysis error: " + message) {}
};

/// A fault raised while executing a statement inside the database engine.
/// Fatal: the engine deterministically rejects the statement, so retrying
/// it can never succeed.
class ExecutionError : public Error {
 public:
  explicit ExecutionError(const std::string& message)
      : Error("execution error: " + message) {}
};

/// Configuration-level connectivity fault: bad URL, unknown host or
/// database, engine-profile mismatch, use of a closed connection. Fatal —
/// reconnecting with the same configuration would fail the same way.
class ConnectionError : public Error {
 public:
  explicit ConnectionError(const std::string& message)
      : Error("connection error: " + message) {}
};

/// Misuse of a SQLoop API (precondition violation by the caller). Fatal.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& message)
      : Error("usage error: " + message) {}
};

/// A fault that is expected to clear on its own: the statement never
/// reached the engine, so re-issuing it (possibly on a fresh connection)
/// is safe and produces the same result as an undisturbed run.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& message)
      : Error("transient error: " + message) {}

 protected:
  /// Subclasses carry their own prefix instead of stacking "transient
  /// error:" in front of it.
  struct Raw {};
  TransientError(Raw, const std::string& message) : Error(message) {}
};

/// A statement (or connection attempt) exceeded its deadline before the
/// engine applied it. Transient: the work never happened, retry is safe.
class TimeoutError : public TransientError {
 public:
  explicit TimeoutError(const std::string& message)
      : TransientError(Raw{}, "timeout: " + message) {}
};

/// The connection to the engine dropped (or an open attempt was refused)
/// before the in-flight statement was applied. Transient: reopen and retry.
class ConnectionLostError : public TransientError {
 public:
  explicit ConnectionLostError(const std::string& message)
      : TransientError(Raw{}, "connection lost: " + message) {}
};

/// An injected whole-process crash (fault_kill_at_round): the job dies at a
/// round boundary exactly as if the driver process were killed. Fatal — the
/// run aborts; a later run with `resume` picks up from the newest valid
/// checkpoint.
class JobKilledError : public Error {
 public:
  explicit JobKilledError(const std::string& message)
      : Error("job killed: " + message) {}
};

/// The job was cancelled through its JobHandle (service API) — while
/// queued, at a round border, or mid-statement (the engine checks the
/// job's CancelToken every `cancel_check_rows` rows inside scans and
/// joins). Fatal — the run stops and its scratch state is cleaned up;
/// checkpoints (if any) survive, so a resubmission with `resume`
/// continues under the same job identity.
class JobCancelledError : public Error {
 public:
  explicit JobCancelledError(const std::string& message)
      : Error("job cancelled: " + message) {}
};

/// A memory budget was exceeded: the job's, its tenant's, or the server's
/// (the hard-watermark victim kill reports through this type too). Fatal —
/// re-running the same statement would allocate the same bytes and fail
/// the same way, so the offending job aborts at a clean statement boundary
/// while every other job keeps running.
class QuotaExceededError : public Error {
 public:
  explicit QuotaExceededError(const std::string& message)
      : Error("quota exceeded: " + message) {}
};

/// A straggling task's statement was cancelled because a speculative copy
/// of the task took ownership (straggler mitigation). Fatal to the retry
/// machinery — the original attempt must NOT be retried; the speculation
/// path catches this and hands the task's remaining pieces to the spare
/// connection. The statement never reached the engine (cancellation is
/// checked before submission), so no work is double-applied.
class TaskSupersededError : public Error {
 public:
  explicit TaskSupersededError(const std::string& message)
      : Error("task superseded: " + message) {}
};

/// Stored or in-memory state failed verification: a dump/manifest CRC
/// mismatch, a table content-checksum mismatch found by `CHECK TABLE` or
/// the background scrub, or an access to a quarantined table. Fatal —
/// retrying the statement would re-read the same corrupt bytes. The repair
/// ladder in core/execute.cpp catches this type specifically and restarts
/// the job from the newest valid checkpoint instead of returning a wrong
/// answer; with repair disabled it surfaces to the caller unchanged.
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& message)
      : Error("integrity violation: " + message) {}
};

/// An injected crash point fired inside the durability I/O shim
/// (fault_crash_at_write / _fsync / _rename): the process "dies" mid-write
/// exactly as a power loss would, leaving whatever torn bytes the crash
/// plan dictates on disk. Fatal — the run aborts; a later run with
/// `resume` recovers from the newest valid checkpoint.
class CrashPointError : public Error {
 public:
  explicit CrashPointError(const std::string& message)
      : Error("crash point: " + message) {}
};

/// The transient-vs-fatal classification table, in one place:
///   transient — TransientError, TimeoutError, ConnectionLostError
///   fatal     — ParseError, AnalysisError, ExecutionError,
///               ConnectionError, UsageError, JobKilledError,
///               JobCancelledError, QuotaExceededError,
///               TaskSupersededError, IntegrityError, CrashPointError,
///               plain Error, anything else
inline bool IsTransientError(const std::exception& error) noexcept {
  return dynamic_cast<const TransientError*>(&error) != nullptr;
}

}  // namespace sqloop
