// Error types shared across all SQLoop modules.
//
// The library reports failures with exceptions (RAII everywhere makes this
// safe); each subsystem throws a subclass of `sqloop::Error` so callers can
// distinguish user mistakes (bad SQL) from engine-side faults.
#pragma once

#include <stdexcept>
#include <string>

namespace sqloop {

/// Root of the SQLoop exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// The submitted SQL text could not be tokenized or parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& message)
      : Error("parse error: " + message) {}
};

/// The statement parsed but refers to unknown tables/columns, has a type
/// mismatch, or violates a semantic rule (e.g. aggregate misuse).
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& message)
      : Error("analysis error: " + message) {}
};

/// A fault raised while executing a statement inside the database engine.
class ExecutionError : public Error {
 public:
  explicit ExecutionError(const std::string& message)
      : Error("execution error: " + message) {}
};

/// Connectivity-layer fault: bad URL, closed connection, unknown database.
class ConnectionError : public Error {
 public:
  explicit ConnectionError(const std::string& message)
      : Error("connection error: " + message) {}
};

/// Misuse of a SQLoop API (precondition violation by the caller).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& message)
      : Error("usage error: " + message) {}
};

}  // namespace sqloop
