#include "common/memory_tracker.h"

#include <vector>

namespace sqloop {

void MemoryTracker::AddLocal(int64_t bytes) noexcept {
  const int64_t now =
      reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t seen = peak_.load(std::memory_order_relaxed);
  while (now > seen &&
         !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

MemoryTracker* MemoryTracker::TryChargeAll(int64_t bytes, int64_t* now_out,
                                           int64_t* limit_out) noexcept {
  MemoryTracker* node = this;
  while (node != nullptr) {
    const int64_t limit = node->limit_.load(std::memory_order_relaxed);
    const int64_t now =
        node->reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit > 0 && now > limit) {
      // Unwind the partial reservation (this node included) so the failed
      // charge leaves the hierarchy exactly as it found it.
      for (MemoryTracker* undo = this; undo != node->parent_;
           undo = undo->parent_) {
        undo->reserved_.fetch_sub(bytes, std::memory_order_relaxed);
      }
      *now_out = now;
      *limit_out = limit;
      return node;
    }
    int64_t seen = node->peak_.load(std::memory_order_relaxed);
    while (now > seen && !node->peak_.compare_exchange_weak(
                             seen, now, std::memory_order_relaxed)) {
    }
    node = node->parent_;
  }
  return nullptr;
}

void MemoryTracker::Charge(int64_t bytes) {
  if (bytes <= 0) return;
  for (int attempt = 0;; ++attempt) {
    int64_t now = 0;
    int64_t limit = 0;
    MemoryTracker* breached = TryChargeAll(bytes, &now, &limit);
    if (breached == nullptr) return;
    // Last chance before failing the statement: ask the breached scope's
    // reclaimer (the buffer pool, for database scopes) to free at least
    // the overshoot, then retry the charge once.
    if (attempt == 0 && breached->reclaimer_ != nullptr &&
        breached->reclaimer_(now - limit) > 0) {
      continue;
    }
    throw QuotaExceededError("scope '" + breached->scope_ + "' would hold " +
                             std::to_string(now) + " bytes, over its " +
                             std::to_string(limit) + "-byte budget");
  }
}

void MemoryTracker::ChargeUnchecked(int64_t bytes) noexcept {
  if (bytes <= 0) return;
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    node->AddLocal(bytes);
  }
}

void MemoryTracker::Release(int64_t bytes) noexcept {
  if (bytes <= 0) return;
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    // Clamp at zero: a racing release pair can momentarily over-release
    // one scope; pinning the floor keeps the accounting self-healing.
    int64_t seen = node->reserved_.load(std::memory_order_relaxed);
    int64_t next;
    do {
      next = seen > bytes ? seen - bytes : 0;
    } while (!node->reserved_.compare_exchange_weak(
        seen, next, std::memory_order_relaxed));
  }
}

}  // namespace sqloop
