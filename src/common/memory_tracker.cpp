#include "common/memory_tracker.h"

#include <vector>

namespace sqloop {

void MemoryTracker::AddLocal(int64_t bytes) noexcept {
  const int64_t now =
      reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t seen = peak_.load(std::memory_order_relaxed);
  while (now > seen &&
         !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Charge(int64_t bytes) {
  if (bytes <= 0) return;
  MemoryTracker* node = this;
  while (node != nullptr) {
    const int64_t limit = node->limit_.load(std::memory_order_relaxed);
    const int64_t now =
        node->reserved_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit > 0 && now > limit) {
      // Unwind the partial reservation (this node included) so the failed
      // charge leaves the hierarchy exactly as it found it.
      for (MemoryTracker* undo = this; undo != node->parent_;
           undo = undo->parent_) {
        undo->reserved_.fetch_sub(bytes, std::memory_order_relaxed);
      }
      throw QuotaExceededError("scope '" + node->scope_ + "' would hold " +
                               std::to_string(now) + " bytes, over its " +
                               std::to_string(limit) + "-byte budget");
    }
    int64_t seen = node->peak_.load(std::memory_order_relaxed);
    while (now > seen && !node->peak_.compare_exchange_weak(
                             seen, now, std::memory_order_relaxed)) {
    }
    node = node->parent_;
  }
}

void MemoryTracker::ChargeUnchecked(int64_t bytes) noexcept {
  if (bytes <= 0) return;
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    node->AddLocal(bytes);
  }
}

void MemoryTracker::Release(int64_t bytes) noexcept {
  if (bytes <= 0) return;
  for (MemoryTracker* node = this; node != nullptr; node = node->parent_) {
    // Clamp at zero: a racing release pair can momentarily over-release
    // one scope; pinning the floor keeps the accounting self-healing.
    int64_t seen = node->reserved_.load(std::memory_order_relaxed);
    int64_t next;
    do {
      next = seen > bytes ? seen - bytes : 0;
    } while (!node->reserved_.compare_exchange_weak(
        seen, next, std::memory_order_relaxed));
  }
}

}  // namespace sqloop
