// Cooperative cancellation token (DESIGN.md "Resource governance &
// overload protection").
//
// One CancelToken is shared by everything that may want a job stopped —
// JobHandle::Cancel, the server's hard-watermark victim picker, graceful
// drain — and everything that must observe the request: the dbc layer
// checks it before each statement, and the minidb executor checks it every
// `cancel_check_rows` rows INSIDE scans and joins, so a request preempts a
// long cross join mid-statement instead of waiting for the round border.
//
// The reason decides the error type the observer throws: a user cancel
// surfaces as JobCancelledError, a quota/watermark kill as
// QuotaExceededError. Both are non-transient, so the retry machinery
// surfaces them immediately instead of churning.
#pragma once

#include <atomic>
#include <mutex>
#include <string>

#include "common/error.h"

namespace sqloop {

enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,  // JobHandle::Cancel / drain -> JobCancelledError
  kQuota = 2,      // watermark victim kill -> QuotaExceededError
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; the first request wins (a later request with a
  /// different reason does not overwrite the original story).
  void Request(CancelReason reason, std::string message) {
    if (reason == CancelReason::kNone) return;
    {
      const std::scoped_lock lock(mutex_);
      if (reason_.load(std::memory_order_relaxed) !=
          static_cast<int>(CancelReason::kNone)) {
        return;
      }
      message_ = std::move(message);
      // The release store publishes message_ to observers: ThrowNow reads
      // the message only after an acquire load sees a nonzero reason.
      reason_.store(static_cast<int>(reason), std::memory_order_release);
    }
  }

  bool requested() const noexcept {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<int>(CancelReason::kNone);
  }

  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// Throws the error matching the recorded reason. Precondition:
  /// requested().
  [[noreturn]] void ThrowNow() const {
    const CancelReason why = reason();
    std::string message;
    {
      const std::scoped_lock lock(mutex_);
      message = message_;
    }
    if (why == CancelReason::kQuota) throw QuotaExceededError(message);
    throw JobCancelledError(message);
  }

  void ThrowIfRequested() const {
    if (requested()) ThrowNow();
  }

 private:
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
  mutable std::mutex mutex_;
  std::string message_;
};

}  // namespace sqloop
