#include "common/fault.h"

namespace sqloop {

const char* FaultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kSlow:
      return "slow";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), rng_(config.seed) {}

bool FaultInjector::BudgetLeftLocked() const noexcept {
  if (config_.max_faults < 0) return true;
  const uint64_t total =
      injected_connect_ + injected_drop_ + injected_transient_ + injected_slow_;
  return total < static_cast<uint64_t>(config_.max_faults);
}

bool FaultInjector::FireLocked(double rate, uint64_t every, uint64_t counter) {
  // The deterministic every-N trigger wins; the rate draw consumes one PRNG
  // value only when a rate is configured, keeping the stream stable.
  if (every > 0 && counter % every == 0) return true;
  if (rate > 0 && rng_.NextDouble() < rate) return true;
  return false;
}

bool FaultInjector::ShouldFailConnect() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t n = ++connect_decisions_;
  if (!BudgetLeftLocked()) return false;
  if (FireLocked(config_.connect_failure_rate, config_.connect_every, n)) {
    ++injected_connect_;
    return true;
  }
  return false;
}

FaultKind FaultInjector::NextStatementFault() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t n = ++statement_decisions_;
  if (!BudgetLeftLocked()) return FaultKind::kNone;
  if (FireLocked(config_.drop_rate, config_.drop_every, n)) {
    ++injected_drop_;
    return FaultKind::kDrop;
  }
  if (FireLocked(config_.transient_rate, config_.transient_every, n)) {
    ++injected_transient_;
    return FaultKind::kTransient;
  }
  if (FireLocked(config_.slow_rate, config_.slow_every, n)) {
    ++injected_slow_;
    return FaultKind::kSlow;
  }
  return FaultKind::kNone;
}

bool FaultInjector::ShouldKillAtRound(int64_t round) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.kill_at_round <= 0 || kill_fired_) return false;
  if (round < config_.kill_at_round) return false;
  kill_fired_ = true;
  return true;
}

uint64_t FaultInjector::injected_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_connect_ + injected_drop_ + injected_transient_ +
         injected_slow_;
}

uint64_t FaultInjector::injected(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (kind) {
    case FaultKind::kNone:
      return 0;
    case FaultKind::kDrop:
      return injected_drop_;
    case FaultKind::kTransient:
      return injected_transient_;
    case FaultKind::kSlow:
      return injected_slow_;
  }
  return 0;
}

uint64_t FaultInjector::injected_connect_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_connect_;
}

uint64_t FaultInjector::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return connect_decisions_ + statement_decisions_;
}

}  // namespace sqloop
