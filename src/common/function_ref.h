// A non-owning, non-allocating reference to a callable — the glue of the
// push-based execution pipeline, where row sinks and sources are lambdas
// passed straight down the call stack. std::function would heap-allocate
// per operator; FunctionRef is two pointers.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace sqloop {

template <typename Signature>
class FunctionRef;

/// Lifetime rule: the referred callable must outlive the FunctionRef. All
/// pipeline uses pass callables down the stack, never store them.
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<std::remove_reference_t<F>>>(
              obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace sqloop
