// Small string helpers used by the lexer, printer, and translators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sqloop::strings {

/// ASCII lower-casing (SQL identifiers/keywords are case-insensitive).
std::string ToLower(std::string_view text);

/// ASCII upper-casing.
std::string ToUpper(std::string_view text);

/// Case-insensitive equality for ASCII text.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Splits on a separator character; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char separator);

/// Joins the pieces with the given separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `text` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace sqloop::strings
