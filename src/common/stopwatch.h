// Monotonic stopwatch used by the benchmark harness and convergence sampler.
#pragma once

#include <chrono>

namespace sqloop {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void Restart() noexcept { start_ = Clock::now(); }

  double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const noexcept { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sqloop
