// Deterministic pseudo-random generator for synthetic datasets and tests.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// randomness in the repository flows through this generator with explicit
// seeds (never std::random_device).
#pragma once

#include <cstdint>

namespace sqloop {

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() noexcept {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace sqloop
