// Minimal leveled logger. Quiet by default so test and bench output stays
// clean; benches raise the level with --verbose.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace sqloop {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) noexcept { level_.store(level); }
  LogLevel level() const noexcept { return level_.load(); }

  void Write(LogLevel level, const std::string& message) {
    if (level < level_.load()) return;
    static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    const std::scoped_lock lock(mutex_);
    std::cerr << "[sqloop " << kNames[static_cast<int>(level)] << "] "
              << message << '\n';
  }

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mutex_;
};

namespace log_detail {
inline void Emit(LogLevel level, std::ostringstream& stream) {
  Logger::Instance().Write(level, stream.str());
}
}  // namespace log_detail

#define SQLOOP_LOG(level_enum, expr)                                     \
  do {                                                                   \
    if ((level_enum) >= ::sqloop::Logger::Instance().level()) {          \
      std::ostringstream sqloop_log_stream;                              \
      sqloop_log_stream << expr;                                         \
      ::sqloop::log_detail::Emit((level_enum), sqloop_log_stream);       \
    }                                                                    \
  } while (0)

#define SQLOOP_DEBUG(expr) SQLOOP_LOG(::sqloop::LogLevel::kDebug, expr)
#define SQLOOP_INFO(expr) SQLOOP_LOG(::sqloop::LogLevel::kInfo, expr)
#define SQLOOP_WARN(expr) SQLOOP_LOG(::sqloop::LogLevel::kWarn, expr)
#define SQLOOP_ERROR(expr) SQLOOP_LOG(::sqloop::LogLevel::kError, expr)

}  // namespace sqloop
