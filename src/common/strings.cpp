#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace sqloop::strings {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

}  // namespace sqloop::strings
