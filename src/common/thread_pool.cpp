#include "common/thread_pool.h"

namespace sqloop {

ThreadPool::ThreadPool(size_t worker_count,
                       std::function<void(size_t)> on_worker_start) {
  workers_.reserve(worker_count);
  for (size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back(
        [this, i, on_worker_start] { WorkerLoop(i, on_worker_start); });
  }
  // Wait until every worker has run its start hook. Callers rely on the
  // hooks' side effects (per-worker connections) being settled once the
  // pool is constructed — without this, a slow-starting worker could run
  // its hook after the caller already tore those resources down.
  std::unique_lock lock(mutex_);
  started_cv_.wait(lock, [&] { return started_ == worker_count; });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  // std::jthread joins on destruction.
}

std::future<void> ThreadPool::Submit(std::function<void(size_t)> task) {
  std::packaged_task<void(size_t)> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::WaitIdle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop(
    size_t worker_index, const std::function<void(size_t)>& on_worker_start) {
  if (on_worker_start) on_worker_start(worker_index);
  {
    const std::scoped_lock lock(mutex_);
    ++started_;
  }
  started_cv_.notify_all();
  while (true) {
    std::packaged_task<void(size_t)> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task(worker_index);
    {
      const std::scoped_lock lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) idle_.notify_all();
    }
  }
}

void TaskGroup::Submit(std::function<void(size_t)> task) {
  {
    const std::scoped_lock lock(mutex_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)](size_t worker_index) {
    // Decrement even if the task throws; ThreadPool stores the exception in
    // the task's future, but the group's bookkeeping must not leak.
    struct Done {
      TaskGroup* group;
      ~Done() {
        const std::scoped_lock lock(group->mutex_);
        if (--group->pending_ == 0) group->idle_.notify_all();
      }
    } done{this};
    task(worker_index);
  });
}

void TaskGroup::WaitIdle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace sqloop
