// CRC-32 (IEEE 802.3 polynomial, reflected) used to seal checkpoint
// artifacts: minidb table dumps carry a CRC footer and checkpoint manifests
// end in a crc= line, so torn or bit-rotted files are detected at recovery
// time instead of silently resuming from garbage.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sqloop {

namespace detail {
inline const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Incremental CRC-32: feed chunks by passing the previous return value as
/// `crc` (start with 0). Matches zlib's crc32() for the same byte stream.
inline uint32_t Crc32(const void* data, size_t length, uint32_t crc = 0) {
  const auto& table = detail::Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < length; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sqloop
