// Deterministic fault injection for resilience testing.
//
// A FaultInjector decides, from a seeded PRNG and per-kind trigger counters,
// whether an operation should fail and how. The dbc layer consults it at two
// well-defined points:
//
//   * connection open / reopen  -> ShouldFailConnect()
//   * statement (or whole batch) submission -> NextStatementFault()
//
// Faults fire BEFORE the engine sees the statement — the injected failure is
// client-visible but the server state is untouched, which is exactly the
// failure model the resilience layer assumes when it retries a statement
// (see DESIGN.md "Failure model & resilience").
//
// Determinism: one injector holds one PRNG stream behind a mutex. All
// connections configured with the same fault parameters share one injector
// (DriverManager keys them by host + fault config), so a fixed seed yields
// the same fault schedule run-to-run as long as the *order* of draws is
// fixed — true for single-thread and for tests that pin worker counts.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"

namespace sqloop {

/// What a statement-level injection decision came out as.
enum class FaultKind {
  kNone,       // proceed normally
  kDrop,       // connection drops before the statement is applied
  kTransient,  // engine reports a transient fault; connection stays up
  kSlow,       // statement is delayed by FaultConfig::slow_us
};

const char* FaultKindName(FaultKind kind) noexcept;

/// Probabilities / trigger counts for each fault kind. Rates are per
/// decision point in [0, 1]; `*_every` fires deterministically on every
/// N-th decision (0 = disabled) and takes precedence over the rate draw.
struct FaultConfig {
  uint64_t seed = 42;

  double connect_failure_rate = 0.0;  // per Open/Reopen
  uint64_t connect_every = 0;

  double drop_rate = 0.0;  // per statement/batch: connection drop
  uint64_t drop_every = 0;

  double transient_rate = 0.0;  // per statement/batch: transient error
  uint64_t transient_every = 0;

  double slow_rate = 0.0;  // per statement/batch: artificial slowness
  uint64_t slow_every = 0;
  int64_t slow_us = 1000;  // how slow a kSlow statement is

  /// Total injected faults across all kinds; -1 = unlimited. Lets a test
  /// inject "the first 3 faults" and then run clean.
  int64_t max_faults = -1;

  /// Abort the whole job at the start of round N (0 = disabled) by making
  /// the runner throw JobKilledError — a deterministic stand-in for a
  /// process crash, used to test checkpoint recovery. Fires ONCE per
  /// injector, so a resumed run against the same URL does not die again.
  /// Not a statement fault: it does not count against max_faults and is
  /// not part of any().
  int64_t kill_at_round = 0;

  /// True when any fault can ever fire.
  bool any() const noexcept {
    return connect_failure_rate > 0 || connect_every > 0 || drop_rate > 0 ||
           drop_every > 0 || transient_rate > 0 || transient_every > 0 ||
           slow_rate > 0 || slow_every > 0;
  }
};

/// Thread-safe, seeded fault decision source. Shared by every connection
/// carved from the same fault-configured URL.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  /// Decision for a connection Open/Reopen attempt.
  bool ShouldFailConnect();

  /// Decision for one statement (or one whole batch — the batch is a
  /// single client-visible submission). Precedence: drop > transient >
  /// slow, so a single draw sequence stays deterministic.
  FaultKind NextStatementFault();

  /// Latched kill-at-round trigger: true exactly once, on the first call
  /// with round >= kill_at_round (and kill_at_round > 0). The latch makes
  /// a resumed run that shares this injector (same URL) survive rounds past
  /// the kill point.
  bool ShouldKillAtRound(int64_t round);

  const FaultConfig& config() const noexcept { return config_; }
  int64_t slow_us() const noexcept { return config_.slow_us; }

  // --- observability (tests, \faults shell command) --------------------
  uint64_t injected_total() const;
  uint64_t injected(FaultKind kind) const;
  uint64_t injected_connect_failures() const;
  uint64_t decisions() const;

 private:
  /// One per-kind trigger check; assumes lock is held.
  bool FireLocked(double rate, uint64_t every, uint64_t counter);
  bool BudgetLeftLocked() const noexcept;

  const FaultConfig config_;
  mutable std::mutex mutex_;
  Rng rng_;
  uint64_t connect_decisions_ = 0;
  uint64_t statement_decisions_ = 0;
  uint64_t injected_connect_ = 0;
  uint64_t injected_drop_ = 0;
  uint64_t injected_transient_ = 0;
  uint64_t injected_slow_ = 0;
  bool kill_fired_ = false;
};

}  // namespace sqloop
