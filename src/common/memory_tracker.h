// Hierarchical memory accounting (DESIGN.md "Resource governance &
// overload protection").
//
// A MemoryTracker is one node in the server → tenant → job → statement
// scope chain. Charges propagate to the root with relaxed atomics — hot
// paths batch their charges (see the executor's statement governor), so a
// flush touches at most three or four counters. Each node tracks its own
// reservation and high watermark; a node with a budget rejects the charge
// that would cross it by throwing QuotaExceededError, naming the scope
// that ran out, and leaves the hierarchy unchanged (a failed charge is
// fully unwound).
//
// Two charge flavours:
//   * Charge()          — enforced; throws QuotaExceededError on breach.
//   * ChargeUnchecked() — accounting only; storage-side charges (Table row
//     and index memory) use this, because a table mutation mid-statement
//     must not be aborted half-applied. Budget enforcement happens on the
//     transient (statement-scoped) side and at the server watermarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/error.h"

namespace sqloop {

class MemoryTracker {
 public:
  /// `parent` must outlive this tracker; null makes this a root.
  /// `limit_bytes` <= 0 means unlimited.
  explicit MemoryTracker(std::string scope, MemoryTracker* parent = nullptr,
                         int64_t limit_bytes = 0)
      : scope_(std::move(scope)), parent_(parent), limit_(limit_bytes) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  const std::string& scope() const noexcept { return scope_; }
  MemoryTracker* parent() const noexcept { return parent_; }

  int64_t limit_bytes() const noexcept {
    return limit_.load(std::memory_order_relaxed);
  }
  /// Adjusting a budget on a live tracker only affects future charges.
  void set_limit_bytes(int64_t limit) noexcept {
    limit_.store(limit, std::memory_order_relaxed);
  }

  /// Bytes currently reserved under this scope (including child scopes).
  int64_t reserved_bytes() const noexcept {
    return reserved_.load(std::memory_order_relaxed);
  }
  /// Largest reservation this scope ever held (monotonic high watermark).
  int64_t peak_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Reserves `bytes` here and in every ancestor. Throws
  /// QuotaExceededError when any scope's budget would be crossed; the
  /// partial reservation is released before the throw, so a failed charge
  /// leaves every counter as it found it.
  void Charge(int64_t bytes);

  /// Reserves without enforcing budgets (storage-side accounting: the
  /// caller is mid-mutation and cannot abort cleanly). Watermarks still
  /// advance, so server-level shed/victim logic sees the growth.
  void ChargeUnchecked(int64_t bytes) noexcept;

  /// Returns `bytes` reserved earlier (either flavour). Clamped at zero
  /// per scope so release-ordering races cannot drive a counter negative.
  void Release(int64_t bytes) noexcept;

  /// Installs a last-chance reclaimer consulted when an enforced Charge()
  /// would breach THIS node's budget: the partial reservation is unwound,
  /// the reclaimer is asked to free at least the overshoot (argument:
  /// bytes needed; returns bytes actually freed), and the charge is
  /// retried once. The database scope installs its buffer pool's
  /// TryReclaim here, so quota pressure evicts cold pages before a
  /// statement sees QuotaExceededError. Install at scope construction,
  /// before concurrent charges; the callback must not charge this
  /// tracker (releases through other scopes are fine).
  void set_reclaimer(std::function<int64_t(int64_t)> reclaimer) {
    reclaimer_ = std::move(reclaimer);
  }

 private:
  void AddLocal(int64_t bytes) noexcept;
  /// Charges `bytes` on this node and every ancestor. On a breach the
  /// partial reservation is unwound and the breached node is returned
  /// with its observed reservation/limit; null means success.
  MemoryTracker* TryChargeAll(int64_t bytes, int64_t* now_out,
                              int64_t* limit_out) noexcept;

  const std::string scope_;
  MemoryTracker* const parent_;
  std::atomic<int64_t> limit_;
  std::atomic<int64_t> reserved_{0};
  std::atomic<int64_t> peak_{0};
  std::function<int64_t(int64_t)> reclaimer_;
};

}  // namespace sqloop
