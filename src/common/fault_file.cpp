#include "common/fault_file.h"

#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/error.h"

namespace sqloop {
namespace {

struct ShimState {
  std::mutex mutex;
  CrashPlan plan;
  bool fired = false;
  FaultFileCounters counters;
};

ShimState& State() {
  static ShimState state;
  return state;
}

// splitmix64: every torn length and flipped bit derives from
// (plan seed, operation ordinal) and nothing else, so one crash point
// leaves byte-identical wreckage under every mode and sanitizer.
uint64_t Mix(uint64_t seed, uint64_t ordinal) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (ordinal + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void WriteBytesOrThrow(const std::string& path, const char* data, size_t size,
                       const std::string& what) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw ExecutionError("cannot create " + what + " '" + path + "'");
  }
  file.write(data, static_cast<std::streamsize>(size));
  file.flush();
  if (!file.good()) {
    throw ExecutionError("I/O error writing " + what + " '" + path + "'");
  }
}

/// Leaves the wreckage of a crash at `path`: the first `keep` bytes of
/// `data`, with one seeded bit flipped when the plan says storage decayed
/// on the way down.
void WriteWreckage(const std::string& path, const char* data, size_t keep,
                   const CrashPlan& plan, uint64_t ordinal,
                   const std::string& what) {
  std::string surviving(data, keep);
  if (plan.flip_bit && !surviving.empty()) {
    const uint64_t mix = Mix(plan.seed ^ 0x5c5c5c5c5c5c5c5cull, ordinal);
    surviving[mix % surviving.size()] ^=
        static_cast<char>(1u << ((mix >> 32) % 8));
  }
  WriteBytesOrThrow(path, surviving.data(), surviving.size(), what);
}

size_t TornLength(const CrashPlan& plan, uint64_t ordinal, size_t size) {
  if (size == 0) return 0;
  return static_cast<size_t>(Mix(plan.seed, ordinal) % size);
}

}  // namespace

void FaultFile::PublishFile(const std::string& path, const char* data,
                            size_t size, const std::string& what) {
  ShimState& state = State();
  std::lock_guard<std::mutex> hold(state.mutex);
  const std::string tmp = path + ".tmp";

  // Step 1: payload write into the tmp file.
  const uint64_t write_ord = ++state.counters.writes;
  if (!state.fired && state.plan.crash_at_write == write_ord) {
    state.fired = true;
    ++state.counters.crashes;
    // Death mid-write: only a prefix of the payload reached the tmp file;
    // the final path was never touched.
    WriteWreckage(tmp, data, TornLength(state.plan, write_ord, size),
                  state.plan, write_ord, what);
    throw CrashPointError("died during write #" + std::to_string(write_ord) +
                          " of " + what + " '" + path + "'");
  }
  WriteBytesOrThrow(tmp, data, size, what);

  // Step 2: flush/fsync of the tmp file.
  const uint64_t fsync_ord = ++state.counters.fsyncs;
  if (!state.fired && state.plan.crash_at_fsync == fsync_ord) {
    state.fired = true;
    ++state.counters.crashes;
    // Death during fsync: with torn_writes the page cache only made it
    // partway to disk; otherwise the complete tmp file happens to survive.
    // Either way the final path was never touched.
    if (state.plan.torn_writes) {
      WriteWreckage(tmp, data, TornLength(state.plan, fsync_ord, size),
                    state.plan, fsync_ord, what);
    } else if (state.plan.flip_bit) {
      WriteWreckage(tmp, data, size, state.plan, fsync_ord, what);
    }
    throw CrashPointError("died during fsync #" + std::to_string(fsync_ord) +
                          " of " + what + " '" + path + "'");
  }

  // Step 3: atomic rename onto the final path.
  const uint64_t rename_ord = ++state.counters.renames;
  if (!state.fired && state.plan.crash_at_rename == rename_ord) {
    state.fired = true;
    ++state.counters.crashes;
    if (state.plan.torn_writes) {
      // Death during a NON-atomic rename (the worst case the recovery
      // chain must survive): a torn prefix lands at the final path and
      // the tmp file is gone.
      WriteWreckage(path, data, TornLength(state.plan, rename_ord, size),
                    state.plan, rename_ord, what);
      std::remove(tmp.c_str());
    }
    // Otherwise death just before the rename: complete tmp file, final
    // path untouched.
    throw CrashPointError("died during rename #" + std::to_string(rename_ord) +
                          " of " + what + " '" + path + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ExecutionError("cannot publish " + what + " '" + path + "'");
  }
}

void FaultFile::InstallPlan(const CrashPlan& plan) {
  ShimState& state = State();
  std::lock_guard<std::mutex> hold(state.mutex);
  // Re-installing the identical plan (a resume run reopening the same
  // crash-knob URL) keeps the fired latch so recovery proceeds instead of
  // crashing at the same point forever.
  if (plan == state.plan) return;
  state.plan = plan;
  state.fired = false;
  state.counters = FaultFileCounters{};
}

void FaultFile::ClearPlan() {
  ShimState& state = State();
  std::lock_guard<std::mutex> hold(state.mutex);
  state.plan = CrashPlan{};
  state.fired = false;
  state.counters = FaultFileCounters{};
}

CrashPlan FaultFile::plan() {
  ShimState& state = State();
  std::lock_guard<std::mutex> hold(state.mutex);
  return state.plan;
}

FaultFileCounters FaultFile::counters() {
  ShimState& state = State();
  std::lock_guard<std::mutex> hold(state.mutex);
  return state.counters;
}

void FaultFile::ResetCounters() {
  ShimState& state = State();
  std::lock_guard<std::mutex> hold(state.mutex);
  state.counters = FaultFileCounters{};
}

}  // namespace sqloop
