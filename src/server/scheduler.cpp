#include "server/scheduler.h"

#include <algorithm>

namespace sqloop::server {

FairScheduler::Tenant& FairScheduler::Acquire(const std::string& tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) it->second.pass = vtime_;
  return it->second;
}

bool FairScheduler::IsTurn(const std::string& tenant) const {
  const Tenant& mine = tenants_.at(tenant);
  for (const auto& [name, other] : tenants_) {
    if ((other.waiting == 0 && other.live == 0) || name == tenant) continue;
    if (other.pass < mine.pass) return false;
    if (other.pass == mine.pass && name < tenant) return false;
  }
  return true;
}

void FairScheduler::SetWeight(const std::string& tenant, double weight) {
  const std::scoped_lock lock(mutex_);
  Acquire(tenant).weight = std::max(weight, 1e-9);
}

void FairScheduler::Enter(const std::string& tenant) {
  const std::scoped_lock lock(mutex_);
  Tenant& t = Acquire(tenant);
  if (t.live == 0 && t.waiting == 0) t.pass = std::max(t.pass, vtime_);
  ++t.live;
}

void FairScheduler::Leave(const std::string& tenant) noexcept {
  {
    const std::scoped_lock lock(mutex_);
    const auto it = tenants_.find(tenant);
    if (it != tenants_.end() && it->second.live > 0) --it->second.live;
  }
  grant_.notify_all();
}

bool FairScheduler::BeginRound(const std::string& tenant,
                               const std::atomic<bool>& cancelled) {
  std::unique_lock lock(mutex_);
  Tenant& t = Acquire(tenant);
  if (max_active_ == 0) {
    // Unlimited concurrency: keep the stride accounting (fairness
    // metrics, newcomer floor) but never block.
    vtime_ = t.pass;
    t.pass += 1.0 / t.weight;
    ++t.granted;
    return !cancelled.load(std::memory_order_acquire);
  }
  // A tenant returning from true idle re-enters at the current virtual
  // time: it neither replays credit accumulated while absent nor starts
  // behind. A live tenant (between two rounds of a running job) keeps
  // its earned position — flooring here every round would erase the
  // stride history and collapse weighted sharing into round-robin.
  if (t.waiting == 0 && t.live == 0) t.pass = std::max(t.pass, vtime_);
  ++t.waiting;
  grant_.wait(lock, [&] {
    return cancelled.load(std::memory_order_acquire) ||
           (active_ < max_active_ && IsTurn(tenant));
  });
  --t.waiting;
  if (cancelled.load(std::memory_order_acquire)) {
    // Someone else may have been runnable only behind this waiter.
    grant_.notify_all();
    return false;
  }
  ++active_;
  vtime_ = t.pass;
  t.pass += 1.0 / t.weight;
  ++t.granted;
  return true;
}

void FairScheduler::EndRound(const std::string& tenant) noexcept {
  (void)tenant;
  if (max_active_ == 0) return;
  {
    const std::scoped_lock lock(mutex_);
    if (active_ > 0) --active_;
  }
  grant_.notify_all();
}

void FairScheduler::Poke() noexcept { grant_.notify_all(); }

uint64_t FairScheduler::granted(const std::string& tenant) const {
  const std::scoped_lock lock(mutex_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.granted;
}

}  // namespace sqloop::server
