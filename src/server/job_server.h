// JobServer — SQLoop as a service (DESIGN.md "Service architecture").
//
// One JobServer multiplexes many concurrent iterative jobs from many
// tenant sessions over one shared worker ThreadPool and one shared minidb
// backend:
//
//   submissions → AdmissionQueue (bounded, per-tenant caps, weighted pop)
//              → dispatcher threads (one concurrent job each)
//              → the core runners, made yieldable by a RoundGate that the
//                FairScheduler grants round-by-round across tenants.
//
// Per-tenant accounting (rounds, tasks, retries, queue wait, job
// outcomes) accumulates in one telemetry Recorder per tenant, exportable
// through the existing telemetry exporters. Master connections are pooled
// per URL across jobs; the minidb plan cache is shared by construction
// (it lives with the Database), so repeated tenant queries compile once.
//
// The embedded single-job configuration of this class also backs
// SqLoop::Execute — the facade opens an ephemeral session, submits, and
// waits, so the one-shot API is a thin wrapper over the service path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/memory_tracker.h"
#include "common/thread_pool.h"
#include "server/admission.h"
#include "server/job.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "telemetry/recorder.h"

namespace sqloop::minidb {
class Server;  // the backend the background scrubber walks (minidb/server.h)
}  // namespace sqloop::minidb

namespace sqloop::server {

struct JobServerConfig {
  /// Connection URL of the shared backend; every job's master and worker
  /// connections open against it (plus the session's url_params).
  std::string url;

  /// Width of the shared worker pool. 0 = half the hardware threads
  /// (the paper's per-job default, now serving all jobs together).
  int worker_threads = 0;

  /// False = every job builds its own private pool exactly like a
  /// standalone run (the facade's embedded server uses this: legacy
  /// single-job behaviour stays bit-identical, thread count included).
  bool share_worker_pool = true;

  /// Dispatcher threads == jobs that may run concurrently.
  size_t max_running_jobs = 4;

  /// Jobs that may be INSIDE a round simultaneously; the scheduler holds
  /// the rest at the round border. 0 = unlimited (admission still bounds
  /// running jobs). 1 = strict weighted interleaving.
  size_t max_active_rounds = 0;

  /// Bounded submission queue; a full queue rejects with AdmissionError.
  size_t queue_capacity = 64;

  /// Per-tenant cap on queued + running jobs.
  size_t max_inflight_per_tenant = 16;

  /// Weight for tenants that never passed SessionOptions::weight.
  double default_tenant_weight = 1.0;

  /// Retry-after hint carried by AdmissionError.
  int64_t retry_after_ms = 50;

  /// Base seed for per-job derived seeds (below).
  uint64_t seed = 42;

  /// Derive per-job retry-jitter and fault-injector seeds from
  /// (seed, job id) so concurrent jobs draw from independent, reproducible
  /// streams. The job id is stable across resubmission, so a resumed job
  /// keeps its seeds — and its fault schedule. False = legacy behaviour
  /// (options/URL pass through untouched), used by the embedded facade
  /// server so existing single-job runs stay bit-identical.
  bool derive_seeds = true;

  /// Keep finished jobs' master connections in a per-URL pool for reuse.
  /// False = close after every job (the embedded facade server: tests pin
  /// the facade's exact connection accounting).
  bool pool_connections = true;

  /// Terminal jobs kept for Jobs() introspection; older ones are dropped.
  size_t history_limit = 128;

  // --- overload protection (DESIGN.md "Resource governance") ------------

  /// Soft memory watermark over the backend's total reservation (table
  /// storage + every job's transient working sets). While crossed, the
  /// server sheds load: new submissions are rejected with AdmissionError
  /// (+ retry-after), and already queued jobs are held at dispatch until
  /// pressure drops. 0 disables shedding.
  int64_t soft_memory_limit_bytes = 0;

  /// Hard memory watermark: while crossed, a governor thread cancels the
  /// running job holding the most transient memory (deterministic victim:
  /// largest reservation, ties broken toward the most recently admitted),
  /// which fails with QuotaExceededError. 0 disables victim kills.
  int64_t hard_memory_limit_bytes = 0;

  /// Governor thread poll interval (watermark checks). Only meaningful
  /// when hard_memory_limit_bytes > 0.
  int64_t governor_poll_ms = 2;

  // --- background integrity scrub (DESIGN.md "Durability & integrity") --

  /// Interval between background scrub cycles. Each cycle walks every
  /// table of the backend the config URL resolves to and verifies its
  /// maintained content checksum against a recomputation; a mismatch
  /// quarantines the table (jobs touching it fail with IntegrityError
  /// instead of reading corrupt rows). Pacing is governance-aware: cycles
  /// are skipped while the server is shedding load at the soft memory
  /// watermark. 0 disables the scrubber.
  int64_t scrub_interval_ms = 0;
};

/// One row of Jobs() — a point-in-time snapshot of a job.
struct JobInfo {
  uint64_t seq = 0;
  uint64_t id = 0;
  std::string tenant;
  JobState state = JobState::kQueued;
  int64_t rounds = 0;
  double queue_seconds = 0;
  double run_seconds = 0;
  std::string error;
  std::string sql;
};

/// One row of Tenants() — accumulated per-tenant accounting. `recorder`
/// aggregates every job's telemetry (plus tenant.* counters) and plugs
/// straight into telemetry/exporters.h.
struct TenantInfo {
  std::string tenant;
  double weight = 1.0;
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;
  uint64_t jobs_cancelled = 0;
  uint64_t jobs_rejected = 0;
  std::shared_ptr<telemetry::Recorder> recorder;
};

class JobServer {
 public:
  explicit JobServer(JobServerConfig config);
  /// Drains: stops admitting, finishes every admitted job, joins the
  /// dispatchers, closes pooled connections.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Opens (or refreshes) a tenant session. Cheap; any number of sessions
  /// per tenant. The weight applies tenant-wide.
  Session OpenSession(const std::string& tenant, SessionOptions options = {});

  /// Graceful shutdown: subsequent submissions are rejected with
  /// AdmissionError, already admitted jobs run to completion. Idempotent;
  /// also invoked by the destructor.
  void Drain();

  /// Drain with a deadline: stops admitting immediately, gives admitted
  /// jobs `deadline_ms` to finish, then cancels whatever is still running
  /// (those jobs surface JobCancelledError; checkpointed jobs can resume
  /// under the same identity on the next server). Always joins the
  /// dispatchers before returning.
  void Drain(int64_t deadline_ms);

  /// Submits an already parsed statement (the facade's path — it parsed
  /// for dispatch already). `sql_text` is kept for display; `observer`
  /// receives the run's callbacks on the dispatcher thread.
  /// `borrowed_conn`, when non-null, is the connection the job runs on —
  /// the facade lends its master so the run sees its transaction state,
  /// and the server neither opens nor closes a master for the job. It
  /// must stay valid until the job terminates.
  JobHandle SubmitParsed(const std::string& tenant, sql::StatementPtr stmt,
                         std::string sql_text,
                         const core::SqloopOptions& options,
                         core::ExecutionObserver* observer,
                         const std::string& url_params,
                         dbc::Connection* borrowed_conn = nullptr);

  /// Snapshot of active + recent jobs, oldest first.
  std::vector<JobInfo> Jobs() const;
  /// Snapshot of per-tenant accounting.
  std::vector<TenantInfo> Tenants() const;

  const JobServerConfig& config() const noexcept { return config_; }
  size_t queued_jobs() const { return admission_.queued(); }
  size_t inflight(const std::string& tenant) const {
    return admission_.inflight(tenant);
  }
  bool draining() const { return admission_.closed(); }
  /// Master-connection pool accounting.
  uint64_t pool_hits() const;
  uint64_t pool_misses() const;
  /// Rounds the scheduler granted the tenant (fairness metrics).
  uint64_t rounds_granted(const std::string& tenant) const {
    return scheduler_.granted(tenant);
  }

  // --- resource governance ----------------------------------------------
  /// Total bytes reserved under the backend server's root scope (storage
  /// plus transient), i.e. what the watermarks police. 0 when the backend
  /// has no tracker (unknown host).
  int64_t memory_reserved_bytes() const;
  /// True while the soft watermark is crossed (submissions shed).
  bool shedding() const;
  /// Submissions rejected at the soft watermark.
  uint64_t shed_admissions() const noexcept { return shed_admissions_.load(); }
  /// Running jobs cancelled by the hard-watermark governor.
  uint64_t victim_cancellations() const noexcept {
    return victim_cancellations_.load();
  }
  /// Bytes of table pages the governor evicted to spill files instead of
  /// (or before) cancelling a victim at the hard watermark.
  uint64_t pool_bytes_reclaimed() const noexcept {
    return pool_bytes_reclaimed_.load();
  }

  // --- background scrub accounting --------------------------------------
  /// Completed scrub cycles (full walks of the backend's tables).
  uint64_t scrub_cycles() const noexcept { return scrub_cycles_.load(); }
  /// Tables whose checksum was verified across all cycles.
  uint64_t scrub_tables() const noexcept { return scrub_tables_.load(); }
  /// Checksum mismatches found (each quarantines its table).
  uint64_t scrub_corruptions() const noexcept {
    return scrub_corruptions_.load();
  }
  /// Cycles skipped because the server was shedding load.
  uint64_t scrub_skipped() const noexcept { return scrub_skipped_.load(); }

 private:
  struct TenantState {
    double weight = 1.0;
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t rejected = 0;
    std::shared_ptr<telemetry::Recorder> recorder;
    /// The tenant's memory scope ("tenant:<name>", parented on the
    /// backend's root): job scopes hang off it, so a SessionOptions
    /// budget caps the tenant's combined transient memory.
    std::unique_ptr<MemoryTracker> tracker;
  };

  void DispatcherLoop();
  void RunJob(const std::shared_ptr<JobRecord>& job);
  /// Moves the record to a terminal state and notifies waiters; also
  /// bumps the tenant's outcome counters.
  void CompleteJob(JobRecord& job, dbc::ResultSet result,
                   std::exception_ptr error, core::RunStats stats);
  /// JobHandle::Cancel plumbing: wakes round-border waiters; completes
  /// still-queued jobs immediately.
  void HandleCancel(JobRecord& job);
  /// Caller holds tenants_mutex_.
  TenantState& EnsureTenant(const std::string& tenant);
  void MergeTenantTelemetry(const std::string& tenant,
                            const core::RunStats& stats);
  std::unique_ptr<dbc::Connection> AcquireConnection(const std::string& url);
  void ReleaseConnection(const std::string& url,
                         std::unique_ptr<dbc::Connection> conn);
  /// Jobs that materialize the same relation on the shared backend are
  /// serialized: the relation and its _delta/_tmp/_pt scratch tables are
  /// shared state. The wait is cancellable (Cancel() pokes it) and is
  /// reported as `service.target_wait_seconds` in the job's telemetry.
  void AcquireTarget(JobRecord& job, telemetry::Recorder* recorder);
  void ReleaseTarget(const JobRecord& job);
  /// Hard-watermark governor: polls the root reservation and cancels the
  /// largest running job (by job-scope bytes) while the hard watermark is
  /// crossed.
  void GovernorLoop();
  /// Pressure ladder step 1: ask every backend database's buffer pool to
  /// evict pages to spill files. Returns the bytes actually released.
  int64_t ShrinkBackendPools(int64_t want_bytes);
  /// One governor decision. Returns true if a victim was cancelled.
  bool KillLargestVictim();
  /// Background scrub thread body: one cycle per scrub_interval_ms, each
  /// cycle verifying every backend table's content checksum under its
  /// shared lock. Skips cycles while shedding() (governance-aware pacing).
  void ScrubLoop();
  /// One scrub cycle. Returns the number of corrupt tables found.
  uint64_t ScrubBackendOnce();
  /// Caller holds registry_mutex_. Drops the oldest terminal jobs beyond
  /// history_limit.
  void TrimHistory();

  const JobServerConfig config_;
  std::unique_ptr<ThreadPool> shared_pool_;  // null when !share_worker_pool
  FairScheduler scheduler_;
  AdmissionQueue admission_;

  mutable std::mutex registry_mutex_;
  std::map<uint64_t, std::shared_ptr<JobRecord>> registry_;  // by seq
  std::atomic<uint64_t> next_seq_{1};

  mutable std::mutex tenants_mutex_;
  std::map<std::string, TenantState> tenants_;

  mutable std::mutex targets_mutex_;
  std::condition_variable targets_cv_;
  std::set<std::string> busy_targets_;

  mutable std::mutex pool_mutex_;
  std::map<std::string, std::vector<std::unique_ptr<dbc::Connection>>>
      idle_conns_;
  uint64_t pool_hits_ = 0;
  uint64_t pool_misses_ = 0;

  // --- resource governance ----------------------------------------------
  /// The backend's root memory scope (shared so it outlives re-registered
  /// hosts); null when the config URL's host resolves to no server, in
  /// which case `fallback_root_` parents the tenant scopes so accounting
  /// still works without watermarks.
  std::shared_ptr<MemoryTracker> root_tracker_;
  std::unique_ptr<MemoryTracker> fallback_root_;
  /// Running jobs' memory scopes, for the governor's victim pick:
  /// seq → (record, job scope). Entries live exactly while RunJob runs.
  mutable std::mutex running_mutex_;
  std::map<uint64_t, std::pair<std::shared_ptr<JobRecord>, MemoryTracker*>>
      running_;
  std::atomic<uint64_t> shed_admissions_{0};
  std::atomic<uint64_t> victim_cancellations_{0};
  std::atomic<uint64_t> pool_bytes_reclaimed_{0};
  std::atomic<bool> stop_governor_{false};
  std::mutex governor_mutex_;
  std::condition_variable governor_cv_;
  std::thread governor_;

  // --- background integrity scrub ---------------------------------------
  /// The backend the config URL resolves to; the scrubber walks its
  /// tables. Null when the host is unknown (scrubber never starts).
  minidb::Server* backend_ = nullptr;
  std::atomic<uint64_t> scrub_cycles_{0};
  std::atomic<uint64_t> scrub_tables_{0};
  std::atomic<uint64_t> scrub_corruptions_{0};
  std::atomic<uint64_t> scrub_skipped_{0};
  std::atomic<bool> stop_scrub_{false};
  std::mutex scrub_mutex_;
  std::condition_variable scrub_cv_;
  std::thread scrubber_;

  std::mutex drain_mutex_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace sqloop::server
