// Job objects for the service API (DESIGN.md "Service architecture").
//
// A submission becomes a JobRecord — the server-side state machine
// (queued → running → completed/failed/cancelled) — and the caller gets a
// JobHandle: a cheap, copyable view with Status()/Wait()/Cancel()/Stats().
// The job's identity (`id`) is a hash of (tenant, canonical SQL, mode,
// partitions); it is deliberately stable across resubmission, so a
// cancelled or crashed job resumed with `options.resume = true` continues
// under the same identity — same checkpoint directory, same derived
// fault/jitter seeds, same injector schedule.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancel.h"
#include "common/stopwatch.h"
#include "core/observer.h"
#include "core/options.h"
#include "dbc/connection.h"
#include "sql/ast.h"

namespace sqloop::server {

enum class JobState {
  kQueued,     // admitted, waiting for a dispatcher
  kRunning,    // a dispatcher is driving its rounds
  kCompleted,  // result available
  kFailed,     // error available (rethrown by Wait)
  kCancelled,  // cancelled while queued or at a round border
};

const char* JobStateName(JobState state) noexcept;

inline bool IsTerminal(JobState state) noexcept {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// Server-side state of one submitted job. The immutable identity fields
/// are set at submission; everything below `mutex` is the live state
/// machine, guarded by it. Shared (via shared_ptr) between the server's
/// registry, the admission queue, and every JobHandle.
struct JobRecord {
  // --- identity (immutable after Submit) --------------------------------
  uint64_t seq = 0;      // registry key, unique per submission
  uint64_t id = 0;       // job identity hash, stable across resubmission
  std::string tenant;
  std::string sql;       // canonical text, for \jobs and diagnostics
  std::string url;       // connection URL the job runs against
  /// Relation the job materializes on the shared backend (folded CTE
  /// name; empty for plain SQL). Jobs sharing a target are serialized by
  /// the server — the relation and its scratch tables are shared state.
  std::string target;
  sql::StatementPtr stmt;
  core::SqloopOptions options;  // effective (defaults + derived seeds)
  core::ExecutionObserver* observer = nullptr;  // facade passthrough
  /// Connection lent by the submitter (the SqLoop facade lends its
  /// master): the job runs on it instead of opening its own, preserving
  /// the caller's transaction state and connection accounting. Must stay
  /// valid until the job terminates; never pooled or closed by the server.
  dbc::Connection* borrowed_conn = nullptr;
  Stopwatch watch;       // started at submission

  // --- live progress (lock-free reads for pollers) ----------------------
  std::atomic<bool> cancel_requested{false};
  std::atomic<int64_t> rounds{0};  // last round granted by the scheduler
  /// Governance cancellation token: requested by JobHandle::Cancel
  /// (kCancelled), the server's hard-watermark victim picker (kQuota), and
  /// drain deadlines (kCancelled). Observed pre-statement by dbc and
  /// mid-statement by the engine governor, so a request preempts a running
  /// scan or join instead of waiting for the round border.
  CancelToken token;

  // --- state machine -----------------------------------------------------
  mutable std::mutex mutex;
  std::condition_variable cv;
  JobState state = JobState::kQueued;
  std::exception_ptr error;        // set iff kFailed / kCancelled
  std::string error_message;
  dbc::ResultSet result;           // set iff kCompleted
  core::RunStats stats;
  double queue_seconds = 0;        // admission → dispatch
  double run_seconds = 0;          // dispatch → terminal
  /// Installed by the server so Cancel() can wake a blocked round grant
  /// and drop the job from the admission queue; cleared when the job
  /// terminates (a handle outliving the server only sees terminal jobs).
  std::function<void(JobRecord&)> cancel_hook;
};

/// The caller's view of a submitted job. Copyable; all methods are
/// thread-safe. Wait() blocks until the job terminates and either returns
/// the result or rethrows the job's error with its original type
/// (ParseError, RetryExhausted, JobCancelledError, ...).
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::shared_ptr<JobRecord> record)
      : record_(std::move(record)) {}

  bool valid() const noexcept { return record_ != nullptr; }
  uint64_t id() const { return record_->id; }
  const std::string& tenant() const { return record_->tenant; }
  const std::string& sql() const { return record_->sql; }

  JobState Status() const;
  bool Done() const { return IsTerminal(Status()); }
  /// Last round the scheduler granted this job (live, lock-free).
  int64_t rounds() const {
    return record_->rounds.load(std::memory_order_relaxed);
  }

  /// Blocks until the job terminates; never throws.
  void WaitDone() const;
  /// Blocks until the job terminates, then returns its result or rethrows
  /// its error.
  dbc::ResultSet Wait() const;

  /// Requests cancellation: a queued job terminates immediately, a
  /// running one stops cooperatively — mid-statement via the engine
  /// governor (within `cancel_check_rows` rows), or at the next
  /// pre-statement / round-border check, whichever comes first (surfacing
  /// JobCancelledError from Wait). No-op on a terminal job.
  void Cancel() const;

  /// Snapshot of the job's RunStats (complete once the job terminates).
  core::RunStats Stats() const;
  double queue_seconds() const;
  double run_seconds() const;
  std::string error_message() const;

 private:
  std::shared_ptr<JobRecord> record_;
};

}  // namespace sqloop::server
