#include "server/job_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "core/execute.h"
#include "minidb/database.h"
#include "minidb/table.h"
#include "core/resilience.h"
#include "dbc/driver.h"
#include "minidb/schema.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace sqloop::server {
namespace {

uint64_t Fnv1a(std::string_view text, uint64_t hash) {
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Job identity: stable across resubmission of the same work by the same
/// tenant (tenant, canonical SQL, mode, partitions), so a cancelled or
/// crashed job resumed later keeps its checkpoint directory and derived
/// seeds. Deliberately independent of options.resume and submission order.
uint64_t JobIdentity(const std::string& tenant, const std::string& canonical,
                     const core::SqloopOptions& options) {
  uint64_t hash = Fnv1a(tenant, 14695981039346656037ULL);
  hash = Fnv1a("|", hash);
  hash = Fnv1a(canonical, hash);
  hash = Fnv1a("|", hash);
  hash = Fnv1a(core::ExecutionModeName(options.mode), hash);
  hash = Fnv1a("|", hash);
  hash = Fnv1a(std::to_string(options.partitions), hash);
  return hash;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Per-job seed stream k of the server's base seed: independent streams
/// for retry jitter (k=1) and fault injection (k=2), reproducible for a
/// given (base, job id) regardless of what else the server is running.
uint64_t DeriveSeed(uint64_t base, uint64_t job_id, uint64_t stream) {
  return SplitMix64(base ^ SplitMix64(job_id + stream));
}

std::string AppendUrlParams(std::string url, const std::string& params) {
  if (params.empty()) return url;
  url += url.find('?') == std::string::npos ? '?' : '&';
  url += params;
  return url;
}

/// Sets `key=value` in the URL's query string, replacing an existing
/// occurrence (ConnectionConfig::Parse rejects duplicates, so a blind
/// append would fail on URLs that already carry the key).
std::string WithUrlParam(const std::string& url, const std::string& key,
                         const std::string& value) {
  const size_t q = url.find('?');
  if (q == std::string::npos) return url + "?" + key + "=" + value;
  std::string result = url.substr(0, q);
  char separator = '?';
  size_t start = q + 1;
  bool replaced = false;
  while (start <= url.size()) {
    size_t end = url.find('&', start);
    if (end == std::string::npos) end = url.size();
    const std::string param = url.substr(start, end - start);
    if (!param.empty()) {
      if (param.compare(0, key.size() + 1, key + "=") == 0) {
        if (!replaced) {
          result += separator + key + "=" + value;
          separator = '&';
          replaced = true;
        }
      } else {
        result += separator + param;
        separator = '&';
      }
    }
    start = end + 1;
  }
  if (!replaced) result += separator + key + "=" + value;
  return result;
}

/// The runner-side scheduler hook of one running job: BeginRound blocks
/// for the tenant's weighted-fair turn and is the cooperative
/// cancellation point; EndRound returns the round slot.
class JobGate : public core::RoundGate {
 public:
  /// The gate's lifetime announces the tenant as live: the scheduler may
  /// hold a round slot for it across the gaps between its rounds, and
  /// the destructor lifts that claim the moment the run ends.
  JobGate(FairScheduler& scheduler, JobRecord& job)
      : scheduler_(scheduler), job_(job) {
    scheduler_.Enter(job_.tenant);
  }
  ~JobGate() override { scheduler_.Leave(job_.tenant); }

  void BeginRound(int64_t round) override {
    if (!scheduler_.BeginRound(job_.tenant, job_.cancel_requested)) {
      // The token knows WHY the job was stopped: a watermark victim kill
      // must surface as QuotaExceededError, not as a user cancellation.
      if (job_.token.requested()) job_.token.ThrowNow();
      throw JobCancelledError("job " + std::to_string(job_.id) +
                              " at round " + std::to_string(round) +
                              " border");
    }
    job_.rounds.store(round, std::memory_order_relaxed);
  }

  void EndRound(int64_t round) noexcept override {
    (void)round;
    scheduler_.EndRound(job_.tenant);
  }

 private:
  FairScheduler& scheduler_;
  JobRecord& job_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

JobHandle Session::Submit(const std::string& sql) const {
  return Submit(sql, options_.defaults);
}

JobHandle Session::Submit(const std::string& sql,
                          const core::SqloopOptions& options) const {
  return server_->SubmitParsed(tenant_, sql::ParseStatement(sql), sql,
                               options, /*observer=*/nullptr,
                               options_.url_params);
}

// ---------------------------------------------------------------------------
// JobServer
// ---------------------------------------------------------------------------

JobServer::JobServer(JobServerConfig config)
    : config_(std::move(config)),
      scheduler_(config_.max_active_rounds),
      admission_(config_.queue_capacity, config_.max_inflight_per_tenant,
                 config_.retry_after_ms) {
  // The watermarks police the BACKEND's total reservation (table storage
  // plus every connection's transient working sets), so the governance
  // scopes hang off the backend server's root tracker. A host that
  // resolves to no server still gets accounting — just no watermarks —
  // under a private root.
  try {
    const dbc::ConnectionConfig parsed =
        dbc::ConnectionConfig::Parse(config_.url);
    if (minidb::Server* backend = dbc::DriverManager::FindHost(parsed.host)) {
      root_tracker_ = backend->memory_tracker();
      backend_ = backend;
    }
  } catch (...) {
    // An unparsable URL fails later, at the first connection open.
  }
  if (root_tracker_ == nullptr) {
    fallback_root_ = std::make_unique<MemoryTracker>("server");
  }
  if (config_.share_worker_pool) {
    int threads = config_.worker_threads;
    if (threads <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw >= 2 ? static_cast<int>(hw / 2) : 1;
    }
    shared_pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
  }
  const size_t dispatchers = std::max<size_t>(1, config_.max_running_jobs);
  dispatchers_.reserve(dispatchers);
  for (size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  if (config_.hard_memory_limit_bytes > 0 && root_tracker_ != nullptr) {
    governor_ = std::thread([this] { GovernorLoop(); });
  }
  if (config_.scrub_interval_ms > 0 && backend_ != nullptr) {
    scrubber_ = std::thread([this] { ScrubLoop(); });
  }
}

JobServer::~JobServer() { Drain(); }

Session JobServer::OpenSession(const std::string& tenant,
                               SessionOptions options) {
  const double weight = options.weight > 0 ? options.weight
                                           : config_.default_tenant_weight;
  {
    const std::scoped_lock lock(tenants_mutex_);
    TenantState& state = EnsureTenant(tenant);
    state.weight = weight;
    // Like the weight, the tenant budget is tenant-wide and updated by
    // every OpenSession (0 = unlimited).
    state.tracker->set_limit_bytes(options.memory_limit_bytes);
  }
  scheduler_.SetWeight(tenant, weight);
  return Session(this, tenant, std::move(options));
}

void JobServer::Drain() {
  const std::scoped_lock lock(drain_mutex_);
  admission_.Close();
  scheduler_.Poke();
  for (auto& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  // The governor outlives the dispatchers: watermark protection stays
  // active while admitted jobs finish.
  stop_governor_.store(true, std::memory_order_release);
  governor_cv_.notify_all();
  if (governor_.joinable()) governor_.join();
  // Ditto the scrubber: tables stay verified until the last job is done.
  stop_scrub_.store(true, std::memory_order_release);
  scrub_cv_.notify_all();
  if (scrubber_.joinable()) scrubber_.join();
  const std::scoped_lock pool_lock(pool_mutex_);
  for (auto& [url, conns] : idle_conns_) {
    for (auto& conn : conns) {
      if (conn != nullptr && !conn->closed()) {
        try {
          conn->Close();
        } catch (...) {
          // Closing pooled connections on shutdown is best-effort.
        }
      }
    }
  }
  idle_conns_.clear();
}

JobServer::TenantState& JobServer::EnsureTenant(const std::string& tenant) {
  TenantState& state = tenants_[tenant];
  if (state.recorder == nullptr) {
    state.recorder = std::make_shared<telemetry::Recorder>();
    state.weight = config_.default_tenant_weight;
  }
  if (state.tracker == nullptr) {
    MemoryTracker* root = root_tracker_ != nullptr ? root_tracker_.get()
                                                   : fallback_root_.get();
    state.tracker =
        std::make_unique<MemoryTracker>("tenant:" + tenant, root);
  }
  return state;
}

void JobServer::Drain(int64_t deadline_ms) {
  admission_.Close();  // stop admitting before the clock starts
  scheduler_.Poke();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max<int64_t>(0, deadline_ms));
  for (;;) {
    bool pending = false;
    {
      const std::scoped_lock lock(registry_mutex_);
      for (const auto& [seq, record] : registry_) {
        const std::scoped_lock record_lock(record->mutex);
        if (!IsTerminal(record->state)) {
          pending = true;
          break;
        }
      }
    }
    if (!pending || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Past the deadline: cancel the stragglers. They stop mid-statement via
  // the engine governor; checkpointed jobs resume under the same identity
  // on the next server.
  std::vector<std::shared_ptr<JobRecord>> stragglers;
  {
    const std::scoped_lock lock(registry_mutex_);
    for (const auto& [seq, record] : registry_) {
      const std::scoped_lock record_lock(record->mutex);
      if (!IsTerminal(record->state)) stragglers.push_back(record);
    }
  }
  for (const auto& record : stragglers) JobHandle(record).Cancel();
  Drain();  // joins dispatchers (stragglers unwind quickly) and governor
}

bool JobServer::shedding() const {
  return config_.soft_memory_limit_bytes > 0 && root_tracker_ != nullptr &&
         root_tracker_->reserved_bytes() >= config_.soft_memory_limit_bytes;
}

int64_t JobServer::memory_reserved_bytes() const {
  return root_tracker_ != nullptr ? root_tracker_->reserved_bytes() : 0;
}

void JobServer::GovernorLoop() {
  std::unique_lock<std::mutex> lock(governor_mutex_);
  const auto poll =
      std::chrono::milliseconds(std::max<int64_t>(1, config_.governor_poll_ms));
  while (!stop_governor_.load(std::memory_order_acquire)) {
    governor_cv_.wait_for(lock, poll, [&] {
      return stop_governor_.load(std::memory_order_acquire);
    });
    if (stop_governor_.load(std::memory_order_acquire)) break;
    const int64_t reserved = root_tracker_->reserved_bytes();
    if (reserved >= config_.hard_memory_limit_bytes) {
      // Pressure ladder: evicting cold table pages to their spill files is
      // loss-free, cancelling a job throws its progress away — so shrink
      // the backend's buffer pools first and only kill when eviction
      // cannot get the reservation back under the watermark.
      ShrinkBackendPools(reserved - config_.hard_memory_limit_bytes);
      if (root_tracker_->reserved_bytes() >= config_.hard_memory_limit_bytes) {
        KillLargestVictim();
      }
    }
  }
}

int64_t JobServer::ShrinkBackendPools(int64_t want_bytes) {
  if (backend_ == nullptr || want_bytes <= 0) return 0;
  int64_t freed = 0;
  for (const std::string& db_name : backend_->DatabaseNames()) {
    if (freed >= want_bytes) break;
    const std::shared_ptr<minidb::Database> db =
        backend_->FindDatabase(db_name);
    if (db == nullptr) continue;  // dropped since the name snapshot
    freed += db->buffer_pool().TryReclaim(want_bytes - freed);
  }
  if (freed > 0) {
    pool_bytes_reclaimed_.fetch_add(static_cast<uint64_t>(freed),
                                    std::memory_order_relaxed);
  }
  return freed;
}

void JobServer::ScrubLoop() {
  std::unique_lock<std::mutex> lock(scrub_mutex_);
  const auto interval =
      std::chrono::milliseconds(std::max<int64_t>(1, config_.scrub_interval_ms));
  while (!stop_scrub_.load(std::memory_order_acquire)) {
    scrub_cv_.wait_for(lock, interval, [&] {
      return stop_scrub_.load(std::memory_order_acquire);
    });
    if (stop_scrub_.load(std::memory_order_acquire)) break;
    // Governance-aware pacing: a scrub pass scans whole tables under
    // shared locks; while the server is already shedding load at the soft
    // watermark, skipping the cycle is strictly better than adding reads.
    if (shedding()) {
      scrub_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ScrubBackendOnce();
    scrub_cycles_.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t JobServer::ScrubBackendOnce() {
  uint64_t corruptions = 0;
  for (const std::string& db_name : backend_->DatabaseNames()) {
    const std::shared_ptr<minidb::Database> db =
        backend_->FindDatabase(db_name);
    if (db == nullptr) continue;  // dropped since the name snapshot
    for (const std::string& table_name : db->TableNames()) {
      if (stop_scrub_.load(std::memory_order_acquire)) return corruptions;
      const std::shared_ptr<minidb::Table> table = db->FindTable(table_name);
      if (table == nullptr || table->quarantined()) continue;
      uint64_t expected = 0;
      uint64_t actual = 0;
      bool ok = true;
      {
        const std::shared_lock table_lock(table->lock());
        ok = table->VerifyContent(&expected, &actual);
        if (!ok) table->set_quarantined(true);
      }
      scrub_tables_.fetch_add(1, std::memory_order_relaxed);
      if (!ok) {
        ++corruptions;
        scrub_corruptions_.fetch_add(1, std::memory_order_relaxed);
        SQLOOP_WARN("background scrub: table '"
                    << db_name << "." << table_name
                    << "' failed its content checksum (maintained " << expected
                    << ", recomputed " << actual << "); table quarantined");
      }
    }
  }
  return corruptions;
}

bool JobServer::KillLargestVictim() {
  std::shared_ptr<JobRecord> victim;
  int64_t victim_bytes = 0;
  {
    const std::scoped_lock lock(running_mutex_);
    for (const auto& [seq, entry] : running_) {
      const auto& [record, tracker] = entry;
      // A kill already in flight: let it unwind before judging again,
      // otherwise one pressure spike cascades into killing every job.
      if (record->token.reason() == CancelReason::kQuota) return true;
      const int64_t bytes = tracker->reserved_bytes();
      if (bytes <= 0) continue;  // storage pressure; killing won't help
      // Deterministic victim: most bytes, ties broken toward the most
      // recently admitted job (earlier submitters keep their progress).
      if (victim == nullptr || bytes > victim_bytes ||
          (bytes == victim_bytes && seq > victim->seq)) {
        victim = record;
        victim_bytes = bytes;
      }
    }
    if (victim == nullptr) return false;
    victim->token.Request(
        CancelReason::kQuota,
        "job " + std::to_string(victim->id) + " cancelled: server over its " +
            std::to_string(config_.hard_memory_limit_bytes) +
            "-byte hard memory watermark (job held " +
            std::to_string(victim_bytes) + " bytes)");
    victim->cancel_requested.store(true, std::memory_order_release);
  }
  victim_cancellations_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(tenants_mutex_);
    EnsureTenant(victim->tenant)
        .recorder->Add("governance.victim_cancellations", 1);
  }
  // Wake the victim wherever it is blocked (round border, target wait);
  // the engine governor picks the token up mid-statement.
  scheduler_.Poke();
  { const std::scoped_lock lock(targets_mutex_); }
  targets_cv_.notify_all();
  return true;
}

JobHandle JobServer::SubmitParsed(const std::string& tenant,
                                  sql::StatementPtr stmt,
                                  std::string sql_text,
                                  const core::SqloopOptions& options,
                                  core::ExecutionObserver* observer,
                                  const std::string& url_params,
                                  dbc::Connection* borrowed_conn) {
  if (stmt == nullptr) throw UsageError("Submit requires a statement");
  // Soft watermark: shed new work while the backend is under memory
  // pressure — reject up front with a retry-after instead of admitting a
  // job that would deepen the overload. Queued jobs are additionally held
  // at dispatch (see RunJob).
  if (shedding()) {
    shed_admissions_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::scoped_lock lock(tenants_mutex_);
      TenantState& state = EnsureTenant(tenant);
      ++state.rejected;
      state.recorder->Add("tenant.jobs_rejected", 1);
      state.recorder->Add("governance.shed_admissions", 1);
    }
    throw AdmissionError(
        "server over its soft memory watermark (" +
            std::to_string(memory_reserved_bytes()) + " of " +
            std::to_string(config_.soft_memory_limit_bytes) +
            " bytes reserved)",
        config_.retry_after_ms);
  }
  auto job = std::make_shared<JobRecord>();
  job->seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  job->tenant = tenant;
  const std::string canonical = sql::PrintStatement(*stmt);
  job->sql = sql_text.empty() ? canonical : std::move(sql_text);
  job->id = JobIdentity(tenant, canonical, options);
  job->stmt = std::move(stmt);
  if (job->stmt->kind == sql::StatementKind::kWith) {
    job->target = minidb::FoldIdentifier(job->stmt->with.name);
  }
  job->options = options;
  job->observer = observer;
  job->borrowed_conn = borrowed_conn;
  job->url = AppendUrlParams(config_.url, url_params);
  if (config_.derive_seeds) {
    job->options.retry.jitter_seed = DeriveSeed(config_.seed, job->id, 1);
    if (job->url.find("fault_") != std::string::npos) {
      // Each job gets its own deterministic fault stream — concurrent
      // jobs otherwise share one injector and steal each other's draws.
      // Stable across resume: the same job id yields the same seed, so
      // latched triggers (fault_kill_at_round) behave as one schedule.
      // Masked to the int64 range: URL parameters parse as signed.
      job->url = WithUrlParam(
          job->url, "fault_seed",
          std::to_string(DeriveSeed(config_.seed, job->id, 2) &
                         0x7FFFFFFFFFFFFFFFULL));
    }
  }
  job->cancel_hook = [this](JobRecord& record) { HandleCancel(record); };

  double weight = config_.default_tenant_weight;
  {
    const std::scoped_lock lock(tenants_mutex_);
    TenantState& state = EnsureTenant(tenant);
    weight = state.weight;
  }
  {
    const std::scoped_lock lock(registry_mutex_);
    registry_[job->seq] = job;
    TrimHistory();
  }
  try {
    admission_.Push(job, weight);
  } catch (const AdmissionError&) {
    {
      const std::scoped_lock lock(registry_mutex_);
      registry_.erase(job->seq);
    }
    const std::scoped_lock lock(tenants_mutex_);
    TenantState& state = EnsureTenant(tenant);
    ++state.rejected;
    state.recorder->Add("tenant.jobs_rejected", 1);
    throw;
  }
  {
    const std::scoped_lock lock(tenants_mutex_);
    ++EnsureTenant(tenant).submitted;
  }
  return JobHandle(job);
}

void JobServer::DispatcherLoop() {
  while (std::shared_ptr<JobRecord> job = admission_.Pop()) {
    RunJob(job);
    admission_.Release(job->tenant);
  }
}

void JobServer::RunJob(const std::shared_ptr<JobRecord>& job) {
  // Soft watermark: hold queued work at dispatch until pressure drops (a
  // drain lets held jobs through — they run to completion). Cancellation
  // still works while held.
  while (shedding() &&
         !job->cancel_requested.load(std::memory_order_acquire) &&
         !admission_.closed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    const std::scoped_lock lock(job->mutex);
    if (job->state != JobState::kQueued) return;  // cancelled while queued
    job->state = JobState::kRunning;
    job->queue_seconds = job->watch.ElapsedSeconds();
  }
  {
    const std::scoped_lock lock(tenants_mutex_);
    EnsureTenant(job->tenant)
        .recorder->AddSeconds("tenant.queue_wait_seconds",
                              job->queue_seconds);
  }

  dbc::ResultSet result;
  std::exception_ptr error;
  core::RunStats stats;
  stats.recorder = std::make_shared<telemetry::Recorder>();

  // The job's memory scope: parented on the tenant scope (whose budget
  // caps the tenant's combined jobs), capped by the per-job budget. Every
  // connection the run touches charges here; the governor thread reads it
  // to pick hard-watermark victims.
  MemoryTracker* tenant_scope = nullptr;
  {
    const std::scoped_lock lock(tenants_mutex_);
    tenant_scope = EnsureTenant(job->tenant).tracker.get();
  }
  MemoryTracker job_tracker("job:" + std::to_string(job->id), tenant_scope,
                            job->options.memory_limit_bytes);
  {
    const std::scoped_lock lock(running_mutex_);
    running_[job->seq] = {job, &job_tracker};
  }

  std::unique_ptr<dbc::Connection> owned;
  dbc::Connection* master = job->borrowed_conn;
  int64_t saved_check_rows = -1;
  bool target_held = false;
  try {
    if (job->cancel_requested.load(std::memory_order_acquire)) {
      if (job->token.requested()) job->token.ThrowNow();
      throw JobCancelledError("job " + std::to_string(job->id) +
                              " before its first round");
    }
    AcquireTarget(*job, stats.recorder.get());
    target_held = !job->target.empty();
    if (master == nullptr) {
      owned = AcquireConnection(job->url);  // pooled, may be null
      if (owned == nullptr) {
        // Initial open, not a recovery: Retrier::Open retries transient
        // connect faults but keeps fault-free counters at zero.
        core::Retrier open_retrier(job->options.retry, stats.recorder.get(),
                                   job->observer);
        owned = open_retrier.Open(job->url);
        stats.retries += open_retrier.retries();
        stats.timeouts += open_retrier.timeouts();
      }
      master = owned.get();
    }
    master->set_recorder(stats.recorder.get());
    master->set_statement_timeout_ms(job->options.retry.statement_timeout_ms);
    // Governance attachments for statements that run directly on the
    // master (plain SQL, setup); the runners re-apply the same hooks to
    // every worker connection they open.
    saved_check_rows = master->cancel_check_rows();
    master->set_cancel_token(&job->token);
    master->set_memory_tracker(&job_tracker);
    if (job->options.cancel_check_rows > 0) {
      master->set_cancel_check_rows(job->options.cancel_check_rows);
    }

    JobGate gate(scheduler_, *job);
    const core::ExecutionContext ctx{
        job->options, stats,
        stats.recorder.get(), job->observer,
        &gate,        config_.share_worker_pool ? shared_pool_.get() : nullptr,
        &job->token,  &job_tracker};
    result = core::RunStatement(job->url, *master, *job->stmt, ctx);
  } catch (...) {
    error = std::current_exception();
  }
  if (target_held) ReleaseTarget(*job);

  // Unregister from the governor BEFORE job_tracker leaves scope and
  // before the record turns terminal.
  {
    const std::scoped_lock lock(running_mutex_);
    running_.erase(job->seq);
  }
  // The job's own high watermark, for run-level reporting (the shell's
  // \stats governance line); the tenant-scope gauges live in Tenants().
  if (stats.recorder != nullptr) {
    stats.recorder->Set("governance.job_bytes_peak",
                        static_cast<uint64_t>(
                            std::max<int64_t>(0, job_tracker.peak_bytes())));
  }

  // Detach and pool/close the master BEFORE the record turns terminal:
  // the moment Wait() returns, callers are entitled to see the job's
  // connection accounting settled. A borrowed connection is only
  // detached — it belongs to the submitter.
  if (master != nullptr) {
    master->set_recorder(nullptr);
    master->set_statement_timeout_ms(0);
    master->set_cancel_token(nullptr);
    master->set_memory_tracker(nullptr);  // restores the conn's own scope
    if (saved_check_rows >= 0) {
      master->set_cancel_check_rows(saved_check_rows);
    }
  }
  if (owned != nullptr) {
    ReleaseConnection(job->url, std::move(owned));
  }
  MergeTenantTelemetry(job->tenant, stats);
  CompleteJob(*job, std::move(result), error, std::move(stats));
}

void JobServer::CompleteJob(JobRecord& job, dbc::ResultSet result,
                            std::exception_ptr error, core::RunStats stats) {
  JobState state = JobState::kCompleted;
  std::string message;
  bool quota = false;
  if (error != nullptr) {
    try {
      std::rethrow_exception(error);
    } catch (const JobCancelledError& e) {
      state = JobState::kCancelled;
      message = e.what();
    } catch (const QuotaExceededError& e) {
      state = JobState::kFailed;
      message = e.what();
      quota = true;
    } catch (const std::exception& e) {
      state = JobState::kFailed;
      message = e.what();
    } catch (...) {
      state = JobState::kFailed;
      message = "unknown error";
    }
  }
  {
    const std::scoped_lock lock(job.mutex);
    if (IsTerminal(job.state)) return;  // completed by a racing cancel
    job.state = state;
    job.error = error;
    job.error_message = message;
    job.result = std::move(result);
    job.stats = std::move(stats);
    job.run_seconds =
        std::max(0.0, job.watch.ElapsedSeconds() - job.queue_seconds);
    job.cancel_hook = nullptr;
    // Settle the tenant's outcome counters before any waiter wakes: the
    // moment Wait() returns, Tenants() already reflects this job. Lock
    // order job.mutex → tenants_mutex_ matches HandleCancel's path.
    const std::scoped_lock tenants_lock(tenants_mutex_);
    TenantState& tenant = EnsureTenant(job.tenant);
    switch (state) {
      case JobState::kCompleted:
        ++tenant.completed;
        tenant.recorder->Add("tenant.jobs_completed", 1);
        break;
      case JobState::kFailed:
        ++tenant.failed;
        tenant.recorder->Add("tenant.jobs_failed", 1);
        if (quota) tenant.recorder->Add("governance.quota_rejections", 1);
        break;
      case JobState::kCancelled:
        ++tenant.cancelled;
        tenant.recorder->Add("tenant.jobs_cancelled", 1);
        break;
      default:
        break;
    }
  }
  job.cv.notify_all();
}

void JobServer::HandleCancel(JobRecord& job) {
  // A running job re-checks its cancel flag at the next round border;
  // wake it if it is blocked waiting for a grant.
  scheduler_.Poke();
  // Also wake it if it is blocked waiting for its target relation. The
  // empty critical section orders the wake after the cancel flag: a
  // waiter between its predicate check and blocking holds the mutex, so
  // it either saw the flag or is woken by this notify.
  { const std::scoped_lock lock(targets_mutex_); }
  targets_cv_.notify_all();
  // A still-queued job terminates right here (and frees its admission
  // slot); if a dispatcher popped it first, RunJob's pre-round check or
  // the gate picks the cancellation up instead.
  if (admission_.Erase(&job)) {
    CompleteJob(job, {},
                std::make_exception_ptr(JobCancelledError(
                    "job " + std::to_string(job.id) + " while queued")),
                {});
  }
}

void JobServer::MergeTenantTelemetry(const std::string& tenant,
                                     const core::RunStats& stats) {
  const std::scoped_lock lock(tenants_mutex_);
  TenantState& state = EnsureTenant(tenant);
  if (stats.recorder != nullptr) {
    for (const auto& [name, value] : stats.recorder->Counters()) {
      state.recorder->Add(name, value);
    }
    for (const auto& [name, seconds] : stats.recorder->Timers()) {
      state.recorder->AddSeconds(name, seconds);
    }
  }
  state.recorder->Add("tenant.rounds",
                      static_cast<uint64_t>(std::max<int64_t>(
                          0, stats.iterations)));
  state.recorder->Add("tenant.tasks",
                      stats.compute_tasks + stats.gather_tasks);
  state.recorder->Add("tenant.retries", stats.retries);
  // Memory gauges from the tenant's scope: a point-in-time reservation
  // (gauge: last write wins) and the monotonic high watermark.
  if (state.tracker != nullptr) {
    state.recorder->Set(
        "governance.bytes_reserved",
        static_cast<uint64_t>(
            std::max<int64_t>(0, state.tracker->reserved_bytes())));
    state.recorder->SetMax(
        "governance.bytes_peak",
        static_cast<uint64_t>(
            std::max<int64_t>(0, state.tracker->peak_bytes())));
  }
}

void JobServer::AcquireTarget(JobRecord& job, telemetry::Recorder* recorder) {
  if (job.target.empty()) return;
  const double start = job.watch.ElapsedSeconds();
  std::unique_lock<std::mutex> lock(targets_mutex_);
  targets_cv_.wait(lock, [&] {
    return job.cancel_requested.load(std::memory_order_acquire) ||
           busy_targets_.count(job.target) == 0;
  });
  if (job.cancel_requested.load(std::memory_order_acquire)) {
    throw JobCancelledError("job " + std::to_string(job.id) +
                            " waiting for relation '" + job.target + "'");
  }
  busy_targets_.insert(job.target);
  lock.unlock();
  if (recorder != nullptr) {
    recorder->AddSeconds("service.target_wait_seconds",
                         job.watch.ElapsedSeconds() - start);
  }
}

void JobServer::ReleaseTarget(const JobRecord& job) {
  {
    const std::scoped_lock lock(targets_mutex_);
    busy_targets_.erase(job.target);
  }
  targets_cv_.notify_all();
}

std::unique_ptr<dbc::Connection> JobServer::AcquireConnection(
    const std::string& url) {
  if (!config_.pool_connections) return nullptr;  // EnsureOpen opens fresh
  const std::scoped_lock lock(pool_mutex_);
  auto it = idle_conns_.find(url);
  while (it != idle_conns_.end() && !it->second.empty()) {
    std::unique_ptr<dbc::Connection> conn = std::move(it->second.back());
    it->second.pop_back();
    if (conn != nullptr && !conn->closed()) {
      ++pool_hits_;
      return conn;
    }
  }
  ++pool_misses_;
  return nullptr;
}

void JobServer::ReleaseConnection(const std::string& url,
                                  std::unique_ptr<dbc::Connection> conn) {
  if (conn == nullptr) return;
  // Only a clean connection is safe to hand to the next job: open, in
  // autocommit, with no half-built batch.
  if (config_.pool_connections && !admission_.closed() && !conn->closed() &&
      conn->auto_commit() && conn->batch_size() == 0) {
    const std::scoped_lock lock(pool_mutex_);
    idle_conns_[url].push_back(std::move(conn));
    return;
  }
  if (!conn->closed()) {
    try {
      conn->Close();
    } catch (...) {
      // Best-effort on the way out.
    }
  }
}

std::vector<JobInfo> JobServer::Jobs() const {
  std::vector<std::shared_ptr<JobRecord>> records;
  {
    const std::scoped_lock lock(registry_mutex_);
    records.reserve(registry_.size());
    for (const auto& [seq, record] : registry_) records.push_back(record);
  }
  std::vector<JobInfo> infos;
  infos.reserve(records.size());
  for (const auto& record : records) {
    JobInfo info;
    info.seq = record->seq;
    info.id = record->id;
    info.tenant = record->tenant;
    info.sql = record->sql;
    info.rounds = record->rounds.load(std::memory_order_relaxed);
    const std::scoped_lock lock(record->mutex);
    info.state = record->state;
    info.queue_seconds = record->queue_seconds;
    info.run_seconds = record->run_seconds;
    info.error = record->error_message;
    infos.push_back(std::move(info));
  }
  return infos;
}

std::vector<TenantInfo> JobServer::Tenants() const {
  const std::scoped_lock lock(tenants_mutex_);
  std::vector<TenantInfo> infos;
  infos.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    TenantInfo info;
    info.tenant = name;
    info.weight = state.weight;
    info.jobs_submitted = state.submitted;
    info.jobs_completed = state.completed;
    info.jobs_failed = state.failed;
    info.jobs_cancelled = state.cancelled;
    info.jobs_rejected = state.rejected;
    info.recorder = state.recorder;
    infos.push_back(std::move(info));
  }
  return infos;
}

uint64_t JobServer::pool_hits() const {
  const std::scoped_lock lock(pool_mutex_);
  return pool_hits_;
}

uint64_t JobServer::pool_misses() const {
  const std::scoped_lock lock(pool_mutex_);
  return pool_misses_;
}

void JobServer::TrimHistory() {
  size_t terminal = 0;
  for (const auto& [seq, record] : registry_) {
    const std::scoped_lock lock(record->mutex);
    if (IsTerminal(record->state)) ++terminal;
  }
  for (auto it = registry_.begin();
       terminal > config_.history_limit && it != registry_.end();) {
    bool done = false;
    {
      const std::scoped_lock lock(it->second->mutex);
      done = IsTerminal(it->second->state);
    }
    if (done) {
      it = registry_.erase(it);
      --terminal;
    } else {
      ++it;
    }
  }
}

}  // namespace sqloop::server
