// Admission control for the job server (DESIGN.md "Service architecture"):
// a bounded, weighted-fair submission queue with per-tenant in-flight caps.
// Overload is rejected immediately with AdmissionError (carrying a
// retry-after hint) instead of building unbounded backlog; Close() flips
// the queue into drain mode — new submissions are rejected, already
// admitted jobs still run to completion.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.h"

namespace sqloop::server {

struct JobRecord;

/// The server declined to admit a job: the queue is at capacity, the
/// tenant is at its in-flight cap, or the server is draining. Fatal to the
/// submission (nothing was enqueued); the caller may retry after
/// `retry_after_ms()`.
class AdmissionError : public Error {
 public:
  AdmissionError(const std::string& message, int64_t retry_after_ms)
      : Error("admission rejected: " + message +
              " (retry after " + std::to_string(retry_after_ms) + " ms)"),
        retry_after_ms_(retry_after_ms) {}

  int64_t retry_after_ms() const noexcept { return retry_after_ms_; }

 private:
  int64_t retry_after_ms_;
};

/// Bounded multi-tenant job queue. One FIFO lane per tenant; Pop serves
/// lanes by weighted stride (a lane's pass advances by 1/weight per pop),
/// so a heavy submitter cannot starve light tenants even before the
/// round-level scheduler gets involved. The in-flight count — queued plus
/// running — is capped per tenant; Release() frees a slot when a job
/// reaches a terminal state.
class AdmissionQueue {
 public:
  AdmissionQueue(size_t queue_capacity, size_t max_inflight_per_tenant,
                 int64_t retry_after_ms)
      : capacity_(queue_capacity),
        per_tenant_(max_inflight_per_tenant),
        retry_after_ms_(retry_after_ms) {}

  /// Admits a job or throws AdmissionError (queue full / tenant at cap /
  /// draining). `weight` is the tenant's scheduling weight at submit time.
  void Push(std::shared_ptr<JobRecord> job, double weight);

  /// Blocks until a job is available, then returns the next one by
  /// weighted-fair order. Returns nullptr once the queue is closed AND
  /// drained — the dispatcher's signal to exit.
  std::shared_ptr<JobRecord> Pop();

  /// Removes a still-queued job (cancellation). Returns true if the job
  /// was found (its in-flight slot is released here); false if a
  /// dispatcher already popped it.
  bool Erase(const JobRecord* job);

  /// Frees the tenant's in-flight slot after a popped job terminates.
  void Release(const std::string& tenant);

  /// Drain mode: every subsequent Push throws, Pop serves the backlog and
  /// then returns nullptr.
  void Close();

  size_t queued() const;
  size_t inflight(const std::string& tenant) const;
  bool closed() const;

 private:
  struct Lane {
    std::deque<std::shared_ptr<JobRecord>> jobs;
    double weight = 1.0;
    double pass = 0;        // stride position; smaller = served sooner
    size_t inflight = 0;    // queued + running
  };

  const size_t capacity_;
  const size_t per_tenant_;
  const int64_t retry_after_ms_;

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<std::string, Lane> lanes_;
  size_t queued_ = 0;
  double vtime_ = 0;  // pass of the most recent pop; floors idle lanes
  bool closed_ = false;
};

}  // namespace sqloop::server
