#include "server/admission.h"

#include <algorithm>

#include "server/job.h"

namespace sqloop::server {

void AdmissionQueue::Push(std::shared_ptr<JobRecord> job, double weight) {
  {
    const std::scoped_lock lock(mutex_);
    if (closed_) {
      throw AdmissionError("server is draining", retry_after_ms_);
    }
    Lane& lane = lanes_[job->tenant];
    lane.weight = std::max(weight, 1e-9);
    if (lane.inflight >= per_tenant_) {
      throw AdmissionError("tenant '" + job->tenant +
                               "' is at its in-flight cap (" +
                               std::to_string(per_tenant_) + ")",
                           retry_after_ms_);
    }
    if (queued_ >= capacity_) {
      throw AdmissionError("queue is at capacity (" +
                               std::to_string(capacity_) + ")",
                           retry_after_ms_);
    }
    // A lane that sat idle re-enters at the current virtual time instead
    // of replaying the credit it accumulated while empty.
    if (lane.jobs.empty()) lane.pass = std::max(lane.pass, vtime_);
    lane.jobs.push_back(std::move(job));
    ++lane.inflight;
    ++queued_;
  }
  ready_.notify_one();
}

std::shared_ptr<JobRecord> AdmissionQueue::Pop() {
  std::unique_lock lock(mutex_);
  ready_.wait(lock, [this] { return queued_ > 0 || closed_; });
  if (queued_ == 0) return nullptr;  // closed and drained
  Lane* best = nullptr;
  for (auto& [tenant, lane] : lanes_) {
    if (lane.jobs.empty()) continue;
    if (best == nullptr || lane.pass < best->pass) best = &lane;
  }
  std::shared_ptr<JobRecord> job = std::move(best->jobs.front());
  best->jobs.pop_front();
  vtime_ = best->pass;
  best->pass += 1.0 / best->weight;
  --queued_;
  // Another dispatcher may be waiting and more work may remain.
  if (queued_ > 0 || closed_) ready_.notify_one();
  return job;
}

bool AdmissionQueue::Erase(const JobRecord* job) {
  const std::scoped_lock lock(mutex_);
  auto it = lanes_.find(job->tenant);
  if (it == lanes_.end()) return false;
  auto& jobs = it->second.jobs;
  for (auto jt = jobs.begin(); jt != jobs.end(); ++jt) {
    if (jt->get() == job) {
      jobs.erase(jt);
      --queued_;
      --it->second.inflight;  // never popped: release the slot here
      return true;
    }
  }
  return false;
}

void AdmissionQueue::Release(const std::string& tenant) {
  const std::scoped_lock lock(mutex_);
  auto it = lanes_.find(tenant);
  if (it != lanes_.end() && it->second.inflight > 0) --it->second.inflight;
}

void AdmissionQueue::Close() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

size_t AdmissionQueue::queued() const {
  const std::scoped_lock lock(mutex_);
  return queued_;
}

size_t AdmissionQueue::inflight(const std::string& tenant) const {
  const std::scoped_lock lock(mutex_);
  auto it = lanes_.find(tenant);
  return it == lanes_.end() ? 0 : it->second.inflight;
}

bool AdmissionQueue::closed() const {
  const std::scoped_lock lock(mutex_);
  return closed_;
}

}  // namespace sqloop::server
