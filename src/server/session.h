// Tenant sessions for the job server (DESIGN.md "Service architecture").
//
// A Session is the per-tenant submission surface: it carries the tenant's
// scheduling weight, the option defaults applied when Submit is called
// without per-call options, and extra URL parameters appended to every
// connection the tenant's jobs open (the fault-injection knobs ride here,
// which is how the isolation suite gives ONE tenant a faulty backend
// without touching the others).
//
//   auto session = server.OpenSession("analytics", {.weight = 2.0});
//   server::JobHandle job = session.Submit(pagerank_sql);
//   ... do other work ...
//   dbc::ResultSet ranks = job.Wait();
#pragma once

#include <string>
#include <utility>

#include "core/options.h"
#include "server/job.h"

namespace sqloop::server {

class JobServer;

struct SessionOptions {
  /// Scheduling weight of the tenant: rounds are granted in proportion to
  /// weights across tenants. 0 = the server's default_tenant_weight.
  /// Re-opening a session for the same tenant updates the weight.
  double weight = 0;

  /// Option defaults for Submit(sql) calls without per-call options.
  core::SqloopOptions defaults;

  /// Extra URL query parameters ("k=v&k2=v2") appended to the server URL
  /// for this session's jobs — per-tenant fault injection, latency, etc.
  std::string url_params;

  /// Tenant-wide memory budget: the sum of the tenant's jobs' transient
  /// working sets may not exceed this many bytes (0 = unlimited). The job
  /// that would cross the budget fails with QuotaExceededError; the
  /// tenant's other jobs — and every other tenant — are untouched.
  /// Re-opening a session for the same tenant updates the budget, like
  /// `weight`.
  int64_t memory_limit_bytes = 0;
};

/// A cheap, copyable per-tenant submission handle. All methods are
/// thread-safe; the session must not outlive the JobServer it came from.
class Session {
 public:
  /// Submits one SQL statement under the session defaults. Parse errors
  /// throw synchronously (ParseError); overload rejection throws
  /// AdmissionError. Everything after admission is reported through the
  /// returned handle.
  JobHandle Submit(const std::string& sql) const;

  /// Submits under per-call options (the session defaults are ignored).
  JobHandle Submit(const std::string& sql,
                   const core::SqloopOptions& options) const;

  const std::string& tenant() const noexcept { return tenant_; }
  const SessionOptions& options() const noexcept { return options_; }

 private:
  friend class JobServer;
  Session(JobServer* server, std::string tenant, SessionOptions options)
      : server_(server),
        tenant_(std::move(tenant)),
        options_(std::move(options)) {}

  JobServer* server_;
  std::string tenant_;
  SessionOptions options_;
};

}  // namespace sqloop::server
