#include "server/job.h"

#include "common/error.h"

namespace sqloop::server {

const char* JobStateName(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

JobState JobHandle::Status() const {
  const std::scoped_lock lock(record_->mutex);
  return record_->state;
}

void JobHandle::WaitDone() const {
  std::unique_lock lock(record_->mutex);
  record_->cv.wait(lock, [&] { return IsTerminal(record_->state); });
}

dbc::ResultSet JobHandle::Wait() const {
  std::unique_lock lock(record_->mutex);
  record_->cv.wait(lock, [&] { return IsTerminal(record_->state); });
  if (record_->error != nullptr) std::rethrow_exception(record_->error);
  if (record_->state == JobState::kCancelled) {
    // Defensive: cancellation always stores a JobCancelledError, but a
    // handle must never return a bogus result for a cancelled job.
    throw JobCancelledError("job " + std::to_string(record_->id));
  }
  return record_->result;
}

void JobHandle::Cancel() const {
  std::function<void(JobRecord&)> hook;
  {
    const std::scoped_lock lock(record_->mutex);
    if (IsTerminal(record_->state)) return;
    // Token first: anything woken by the cancel_requested store (the
    // engine governor, a pre-statement check) must find the token set.
    record_->token.Request(CancelReason::kCancelled,
                           "job " + std::to_string(record_->id) +
                               " cancelled by its owner");
    record_->cancel_requested.store(true, std::memory_order_release);
    hook = record_->cancel_hook;
  }
  // The hook (set by the server) pokes the scheduler and, for queued
  // jobs, completes the record; invoked outside the record mutex since it
  // takes scheduler/admission locks.
  if (hook) hook(*record_);
}

core::RunStats JobHandle::Stats() const {
  const std::scoped_lock lock(record_->mutex);
  return record_->stats;
}

double JobHandle::queue_seconds() const {
  const std::scoped_lock lock(record_->mutex);
  return record_->queue_seconds;
}

double JobHandle::run_seconds() const {
  const std::scoped_lock lock(record_->mutex);
  return record_->run_seconds;
}

std::string JobHandle::error_message() const {
  const std::scoped_lock lock(record_->mutex);
  return record_->error_message;
}

}  // namespace sqloop::server
