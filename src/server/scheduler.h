// Cross-job round-level scheduler (DESIGN.md "Service architecture").
//
// Running jobs yield the shared worker pool between iteration rounds: the
// runner's RoundGate calls arrive here, and FairScheduler grants round
// slots by weighted stride scheduling — each tenant holds a "pass" that
// advances by 1/weight per granted round, and the waiting tenant with the
// smallest pass goes next. Over time tenants receive rounds in proportion
// to their weights, regardless of how many jobs each has in flight.
//
// `max_active_rounds` bounds how many jobs may be inside a round at once
// (0 = unlimited: the scheduler only keeps the accounting). With a bound
// of 1 rounds of concurrent jobs interleave strictly by weight — the
// configuration the fairness tests pin down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sqloop::server {

class FairScheduler {
 public:
  explicit FairScheduler(size_t max_active_rounds)
      : max_active_(max_active_rounds) {}

  /// Sets the tenant's weight (clamped to > 0). Larger = more rounds.
  void SetWeight(const std::string& tenant, double weight);

  /// Marks the tenant live (a job of its is running) for the duration of
  /// a run; pair with Leave(). A live tenant counts as backlogged even in
  /// the instants between EndRound and its next BeginRound — without
  /// this, two alternating jobs degrade to 1:1 round-robin because at
  /// most one of them is ever observably waiting, and the stride never
  /// engages. Entering from true idle re-floors the pass at the current
  /// virtual time, exactly like a first-seen tenant.
  void Enter(const std::string& tenant);

  /// Ends a run announced by Enter() and wakes waiters held back by this
  /// tenant's backlog claim.
  void Leave(const std::string& tenant) noexcept;

  /// Blocks until the tenant is granted a round slot. Returns false —
  /// without consuming a slot — if `*cancelled` becomes true while
  /// waiting (pair with Poke()). A true return must be matched by
  /// EndRound().
  bool BeginRound(const std::string& tenant,
                  const std::atomic<bool>& cancelled);

  /// Returns the round slot taken by a successful BeginRound.
  void EndRound(const std::string& tenant) noexcept;

  /// Wakes every waiter so it can re-check its cancel flag.
  void Poke() noexcept;

  /// Rounds granted to the tenant so far (fairness metrics).
  uint64_t granted(const std::string& tenant) const;

 private:
  struct Tenant {
    double weight = 1.0;
    double pass = 0;       // stride position
    size_t waiting = 0;    // blocked BeginRound calls
    size_t live = 0;       // running jobs announced by Enter()
    uint64_t granted = 0;
  };

  /// Caller holds mutex_. Creates the tenant on first sight, entering at
  /// the current virtual time so newcomers neither owe nor carry credit.
  Tenant& Acquire(const std::string& tenant);
  /// Caller holds mutex_. True when `tenant` has the smallest pass among
  /// backlogged tenants — those with waiters or live jobs (ties go to the
  /// lexicographically first name, keeping grant order deterministic). A
  /// live tenant with a smaller pass holds its turn across the gap
  /// between its rounds; Leave() lifts the claim if its job ends.
  bool IsTurn(const std::string& tenant) const;

  const size_t max_active_;
  mutable std::mutex mutex_;
  std::condition_variable grant_;
  std::map<std::string, Tenant> tenants_;
  size_t active_ = 0;
  double vtime_ = 0;  // pass of the most recent grant
};

}  // namespace sqloop::server
