#include "telemetry/recorder.h"

#include <thread>

namespace sqloop::telemetry {

const char* SpanKindName(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kCompute:
      return "compute";
    case SpanKind::kGather:
      return "gather";
    case SpanKind::kPriority:
      return "priority";
    case SpanKind::kSetup:
      return "setup";
    case SpanKind::kFinal:
      return "final";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kRestore:
      return "restore";
  }
  return "?";
}

bool ParseSpanKind(std::string_view name, SpanKind* kind) noexcept {
  for (const SpanKind k :
       {SpanKind::kCompute, SpanKind::kGather, SpanKind::kPriority,
        SpanKind::kSetup, SpanKind::kFinal, SpanKind::kMerge,
        SpanKind::kCheckpoint, SpanKind::kRestore}) {
    if (name == SpanKindName(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

void Recorder::Add(std::string_view counter, uint64_t delta) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void Recorder::Set(std::string_view counter, uint64_t value) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), value);
  } else {
    it->second = value;
  }
}

void Recorder::SetMax(std::string_view counter, uint64_t value) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void Recorder::AddSeconds(std::string_view timer, double seconds) {
  const std::scoped_lock lock(mutex_);
  const auto it = timers_.find(timer);
  if (it == timers_.end()) {
    timers_.emplace(std::string(timer), seconds);
  } else {
    it->second += seconds;
  }
}

uint64_t Recorder::counter(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Recorder::timer_seconds(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> Recorder::Counters() const {
  const std::scoped_lock lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Recorder::Timers() const {
  const std::scoped_lock lock(mutex_);
  return {timers_.begin(), timers_.end()};
}

void Recorder::RecordIteration(const IterationStats& round) {
  const std::scoped_lock lock(mutex_);
  iterations_.push_back(round);
}

void Recorder::RecordSpan(const TaskSpan& span) {
  const std::scoped_lock lock(mutex_);
  spans_.push_back(span);
}

std::vector<IterationStats> Recorder::IterationsSnapshot() const {
  const std::scoped_lock lock(mutex_);
  return iterations_;
}

std::vector<TaskSpan> Recorder::SpansSnapshot() const {
  const std::scoped_lock lock(mutex_);
  return spans_;
}

size_t Recorder::iteration_count() const {
  const std::scoped_lock lock(mutex_);
  return iterations_.size();
}

size_t Recorder::span_count() const {
  const std::scoped_lock lock(mutex_);
  return spans_.size();
}

uint64_t Recorder::ThisThreadId() noexcept {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace sqloop::telemetry
