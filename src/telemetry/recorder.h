// Telemetry recorder — the per-run observability substrate (ROADMAP
// "observability"; paper Figs. 4-6 attribute time to rounds and phases).
//
// A Recorder collects three kinds of data during one SQLoop execution:
//   * named counters and timers — cheap, thread-safe, attributed by the
//     layer that pays the cost (dbc.round_trips, minidb.rows_examined,
//     minidb.lock_wait_seconds, ...);
//   * one IterationStats entry per executed round — where the paper's
//     per-round Compute/Gather cost, barrier stalls, message backlog and
//     skipped partitions become measurable;
//   * TaskSpan events — one per Compute/Gather task with partition and
//     thread attribution, for trace-level debugging.
//
// Recorders are created per execution by SqLoop and exposed through
// RunStats::per_iteration(); exporters.h renders them as JSON lines, a
// Prometheus-style snapshot, or a human summary table.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sqloop::telemetry {

/// Everything that happened during one round of an iterative execution.
/// Counts are deltas for the round, not running totals, so summing a field
/// across rounds reproduces the matching RunStats flat total.
struct IterationStats {
  int64_t round = 0;
  uint64_t updates = 0;            // changed rows this round
  uint64_t compute_tasks = 0;
  uint64_t gather_tasks = 0;
  double compute_seconds = 0;      // summed Compute task wall time
  double gather_seconds = 0;       // summed Gather task wall time
  double barrier_wait_seconds = 0; // aggregate worker idle at Sync barriers
  uint64_t messages_produced = 0;  // message tables registered this round
  uint64_t messages_consumed = 0;  // message tables read by Gathers
  uint64_t partitions_skipped = 0; // AsyncP partitions skipped as idle
  double seconds = 0;              // wall time of the whole round
};

enum class SpanKind {
  kCompute,   // one per-partition Compute task
  kGather,    // one per-partition Gather task
  kPriority,  // AsyncP priority refresh query
  kSetup,     // partitioning / view / Rmjoin setup (master)
  kFinal,     // the final query over the union view (master)
  kMerge,       // single-thread R/Rtmp iteration body
  kCheckpoint,  // writing one checkpoint (dumps + manifest, master)
  kRestore,     // restoring job state from a checkpoint (master)
};

const char* SpanKindName(SpanKind kind) noexcept;
/// Inverse of SpanKindName; returns false when `name` is unknown.
bool ParseSpanKind(std::string_view name, SpanKind* kind) noexcept;

/// One unit of attributed work. Times are offsets in seconds from the start
/// of the execution that produced the span (not absolute timestamps).
struct TaskSpan {
  SpanKind kind = SpanKind::kCompute;
  int64_t round = 0;
  int64_t partition = -1;  // -1 = not partition-scoped (setup, final, ...)
  uint64_t thread_id = 0;  // hashed std::thread::id of the executing worker
  double start_seconds = 0;
  double duration_seconds = 0;
  uint64_t updates = 0;
};

/// Thread-safe telemetry sink for one execution. All mutators may be called
/// concurrently from worker threads; snapshot accessors copy under the lock
/// so they are safe to call from a sampler thread mid-run.
class Recorder {
 public:
  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // --- counters / timers ------------------------------------------------
  void Add(std::string_view counter, uint64_t delta);
  /// Gauge semantics: overwrites the counter with `value` (last write
  /// wins). Used for point-in-time readings like governance.bytes_reserved.
  void Set(std::string_view counter, uint64_t value);
  /// High-watermark semantics: keeps the larger of the stored value and
  /// `value` (governance.bytes_peak merges per-job peaks this way).
  void SetMax(std::string_view counter, uint64_t value);
  void AddSeconds(std::string_view timer, double seconds);
  uint64_t counter(std::string_view name) const;        // 0 when absent
  double timer_seconds(std::string_view name) const;    // 0 when absent
  std::vector<std::pair<std::string, uint64_t>> Counters() const;  // sorted
  std::vector<std::pair<std::string, double>> Timers() const;      // sorted

  // --- structured events ------------------------------------------------
  void RecordIteration(const IterationStats& round);
  void RecordSpan(const TaskSpan& span);
  std::vector<IterationStats> IterationsSnapshot() const;
  std::vector<TaskSpan> SpansSnapshot() const;
  size_t iteration_count() const;
  size_t span_count() const;

  /// This thread's id folded to an integer, for TaskSpan::thread_id.
  static uint64_t ThisThreadId() noexcept;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> timers_;
  std::vector<IterationStats> iterations_;
  std::vector<TaskSpan> spans_;
};

}  // namespace sqloop::telemetry
