// Hot-path instrumentation hooks, compiled out entirely when the build sets
// SQLOOP_TELEMETRY_ENABLED=0 (cmake -DSQLOOP_TELEMETRY=OFF).
//
// The hooks guard the code that runs once per statement or per task —
// counter increments in dbc::Connection and minidb's executor, lock-wait
// timing, and TaskSpan event emission. When disabled the macros expand to
// nothing and their arguments are never evaluated (the off-probe test
// proves this at link time), so the hot path carries zero overhead.
//
// The structured per-round IterationStats recording is NOT behind these
// macros: it runs once per round, costs nothing measurable, and is part of
// the execution API (RunStats::per_iteration(), ExecutionObserver) that
// must keep working in every build.
#pragma once

#ifndef SQLOOP_TELEMETRY_ENABLED
#define SQLOOP_TELEMETRY_ENABLED 1
#endif

#if SQLOOP_TELEMETRY_ENABLED

#include "telemetry/recorder.h"

namespace sqloop::telemetry {
inline constexpr bool kHooksEnabled = true;
}  // namespace sqloop::telemetry

/// Runs a statement block only in telemetry-enabled builds.
#define SQLOOP_TELEMETRY(...) \
  do {                        \
    __VA_ARGS__               \
  } while (0)

/// Adds `delta` to counter `name` on `rec` (a Recorder*, may be null).
#define SQLOOP_COUNT(rec, name, delta)            \
  do {                                            \
    if ((rec) != nullptr) (rec)->Add((name), (delta)); \
  } while (0)

/// Adds `seconds` to timer `name` on `rec` (a Recorder*, may be null).
#define SQLOOP_TIME_SECONDS(rec, name, seconds)           \
  do {                                                    \
    if ((rec) != nullptr) (rec)->AddSeconds((name), (seconds)); \
  } while (0)

#else  // SQLOOP_TELEMETRY_ENABLED

namespace sqloop::telemetry {
inline constexpr bool kHooksEnabled = false;
}  // namespace sqloop::telemetry

#define SQLOOP_TELEMETRY(...) \
  do {                        \
  } while (0)
#define SQLOOP_COUNT(rec, name, delta) \
  do {                                 \
  } while (0)
#define SQLOOP_TIME_SECONDS(rec, name, seconds) \
  do {                                          \
  } while (0)

#endif  // SQLOOP_TELEMETRY_ENABLED
