// Renderers for a Recorder's contents:
//   * JSON lines — one self-describing object per line (counter, timer,
//     iteration, span); machine-readable and append-friendly, and readable
//     back with ReadJsonLines for offline analysis of dumped traces;
//   * Prometheus-style text snapshot — flat `# TYPE` + `name value` pairs
//     suitable for a scrape endpoint or a metrics diff in a test;
//   * Summary — the human table the benches print (per-round Compute /
//     Gather cost, barrier stalls, message traffic; paper Figs. 4-6).
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/recorder.h"

namespace sqloop::telemetry {

/// Writes every counter, timer, iteration, and span as one JSON object per
/// line. The format is flat (no nested objects) and stable.
void WriteJsonLines(const Recorder& recorder, std::ostream& out);
std::string JsonLines(const Recorder& recorder);

/// Parses text produced by WriteJsonLines back into `into` (merging with
/// whatever it already holds). Unknown line types are skipped; a malformed
/// line throws UsageError. Returns the number of lines consumed.
size_t ReadJsonLines(std::istream& in, Recorder& into);

/// Prometheus exposition-format snapshot: derived totals over the recorded
/// rounds plus every named counter (`sqloop_<name>_total`) and timer
/// (`sqloop_<name>_seconds_total`), names sanitized to [a-z0-9_].
std::string PrometheusSnapshot(const Recorder& recorder);

/// Human-readable run report: a per-round table plus counters and timers.
std::string Summary(const Recorder& recorder);

}  // namespace sqloop::telemetry
