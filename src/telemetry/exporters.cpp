#include "telemetry/exporters.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace sqloop::telemetry {
namespace {

// %.9g keeps microsecond resolution on run-scale durations while staying
// locale-independent and round-trippable through strtod.
std::string Num(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

// --- minimal reader for our own flat JSON lines --------------------------

/// Finds `"key":` in `line` and returns the offset just past the colon, or
/// npos when the key is absent.
size_t ValueOffset(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

bool FindString(const std::string& line, const std::string& key,
                std::string* out) {
  size_t pos = ValueOffset(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  out->clear();
  for (++pos; pos < line.size(); ++pos) {
    if (line[pos] == '\\' && pos + 1 < line.size()) {
      out->push_back(line[++pos]);
    } else if (line[pos] == '"') {
      return true;
    } else {
      out->push_back(line[pos]);
    }
  }
  return false;  // unterminated string
}

bool FindDouble(const std::string& line, const std::string& key,
                double* out) {
  const size_t pos = ValueOffset(line, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

// Integer fields parse with full 64-bit precision (thread ids exceed the
// 53-bit double mantissa); a fractional/scientific token from a foreign
// writer falls back to the double path.
bool FindUint(const std::string& line, const std::string& key,
              uint64_t* out) {
  const size_t pos = ValueOffset(line, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtoull(line.c_str() + pos, &end, 10);
  if (end == line.c_str() + pos) return false;
  if (*end == '.' || *end == 'e' || *end == 'E') {
    double value = 0;
    if (!FindDouble(line, key, &value)) return false;
    *out = static_cast<uint64_t>(value);
  }
  return true;
}

bool FindInt(const std::string& line, const std::string& key, int64_t* out) {
  const size_t pos = ValueOffset(line, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtoll(line.c_str() + pos, &end, 10);
  if (end == line.c_str() + pos) return false;
  if (*end == '.' || *end == 'e' || *end == 'E') {
    double value = 0;
    if (!FindDouble(line, key, &value)) return false;
    *out = static_cast<int64_t>(value);
  }
  return true;
}

std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out += std::isalnum(u) ? static_cast<char>(std::tolower(u)) : '_';
  }
  return out;
}

void Metric(std::ostringstream& out, const std::string& name,
            const std::string& value) {
  out << "# TYPE " << name << " counter\n" << name << ' ' << value << "\n";
}

}  // namespace

void WriteJsonLines(const Recorder& recorder, std::ostream& out) {
  for (const auto& [name, value] : recorder.Counters()) {
    out << "{\"type\":\"counter\",\"name\":" << Quote(name)
        << ",\"value\":" << value << "}\n";
  }
  for (const auto& [name, seconds] : recorder.Timers()) {
    out << "{\"type\":\"timer\",\"name\":" << Quote(name)
        << ",\"seconds\":" << Num(seconds) << "}\n";
  }
  for (const auto& it : recorder.IterationsSnapshot()) {
    out << "{\"type\":\"iteration\",\"round\":" << it.round
        << ",\"updates\":" << it.updates
        << ",\"compute_tasks\":" << it.compute_tasks
        << ",\"gather_tasks\":" << it.gather_tasks
        << ",\"compute_seconds\":" << Num(it.compute_seconds)
        << ",\"gather_seconds\":" << Num(it.gather_seconds)
        << ",\"barrier_wait_seconds\":" << Num(it.barrier_wait_seconds)
        << ",\"messages_produced\":" << it.messages_produced
        << ",\"messages_consumed\":" << it.messages_consumed
        << ",\"partitions_skipped\":" << it.partitions_skipped
        << ",\"seconds\":" << Num(it.seconds) << "}\n";
  }
  for (const auto& span : recorder.SpansSnapshot()) {
    out << "{\"type\":\"span\",\"kind\":\"" << SpanKindName(span.kind)
        << "\",\"round\":" << span.round
        << ",\"partition\":" << span.partition
        << ",\"thread\":" << span.thread_id
        << ",\"start_seconds\":" << Num(span.start_seconds)
        << ",\"duration_seconds\":" << Num(span.duration_seconds)
        << ",\"updates\":" << span.updates << "}\n";
  }
}

std::string JsonLines(const Recorder& recorder) {
  std::ostringstream out;
  WriteJsonLines(recorder, out);
  return out.str();
}

size_t ReadJsonLines(std::istream& in, Recorder& into) {
  size_t consumed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string type;
    if (!FindString(line, "type", &type)) {
      throw UsageError("telemetry JSON line without a \"type\": " + line);
    }
    if (type == "counter") {
      std::string name;
      uint64_t value = 0;
      if (!FindString(line, "name", &name) ||
          !FindUint(line, "value", &value)) {
        throw UsageError("malformed counter line: " + line);
      }
      into.Add(name, value);
    } else if (type == "timer") {
      std::string name;
      double seconds = 0;
      if (!FindString(line, "name", &name) ||
          !FindDouble(line, "seconds", &seconds)) {
        throw UsageError("malformed timer line: " + line);
      }
      into.AddSeconds(name, seconds);
    } else if (type == "iteration") {
      IterationStats it;
      if (!FindInt(line, "round", &it.round)) {
        throw UsageError("malformed iteration line: " + line);
      }
      FindUint(line, "updates", &it.updates);
      FindUint(line, "compute_tasks", &it.compute_tasks);
      FindUint(line, "gather_tasks", &it.gather_tasks);
      FindDouble(line, "compute_seconds", &it.compute_seconds);
      FindDouble(line, "gather_seconds", &it.gather_seconds);
      FindDouble(line, "barrier_wait_seconds", &it.barrier_wait_seconds);
      FindUint(line, "messages_produced", &it.messages_produced);
      FindUint(line, "messages_consumed", &it.messages_consumed);
      FindUint(line, "partitions_skipped", &it.partitions_skipped);
      FindDouble(line, "seconds", &it.seconds);
      into.RecordIteration(it);
    } else if (type == "span") {
      TaskSpan span;
      std::string kind;
      if (!FindString(line, "kind", &kind) ||
          !ParseSpanKind(kind, &span.kind) ||
          !FindInt(line, "round", &span.round)) {
        throw UsageError("malformed span line: " + line);
      }
      FindInt(line, "partition", &span.partition);
      FindUint(line, "thread", &span.thread_id);
      FindDouble(line, "start_seconds", &span.start_seconds);
      FindDouble(line, "duration_seconds", &span.duration_seconds);
      FindUint(line, "updates", &span.updates);
      into.RecordSpan(span);
    }  // unknown types are forward-compatible: skip
    ++consumed;
  }
  return consumed;
}

std::string PrometheusSnapshot(const Recorder& recorder) {
  const auto iterations = recorder.IterationsSnapshot();
  uint64_t updates = 0;
  double compute = 0, gather = 0, barrier = 0;
  for (const auto& it : iterations) {
    updates += it.updates;
    compute += it.compute_seconds;
    gather += it.gather_seconds;
    barrier += it.barrier_wait_seconds;
  }

  std::ostringstream out;
  Metric(out, "sqloop_iterations_total", std::to_string(iterations.size()));
  Metric(out, "sqloop_updates_total", std::to_string(updates));
  Metric(out, "sqloop_compute_seconds_total", Num(compute));
  Metric(out, "sqloop_gather_seconds_total", Num(gather));
  Metric(out, "sqloop_barrier_wait_seconds_total", Num(barrier));
  Metric(out, "sqloop_task_spans_total",
         std::to_string(recorder.span_count()));
  for (const auto& [name, value] : recorder.Counters()) {
    Metric(out, "sqloop_" + Sanitize(name) + "_total",
           std::to_string(value));
  }
  for (const auto& [name, seconds] : recorder.Timers()) {
    Metric(out, "sqloop_" + Sanitize(name) + "_seconds_total", Num(seconds));
  }
  return out.str();
}

std::string Summary(const Recorder& recorder) {
  std::ostringstream out;
  const auto iterations = recorder.IterationsSnapshot();
  out << "-- telemetry: " << iterations.size() << " round(s), "
      << recorder.span_count() << " span(s) --\n";
  if (!iterations.empty()) {
    out << "round    updates  ctask  gtask  compute_s  gather_s  barrier_s"
           "   msg+   msg-   skip    wall_s\n";
    for (const auto& it : iterations) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%5lld %10llu %6llu %6llu  %9.4f %9.4f  %9.4f %6llu "
                    "%6llu %6llu %9.4f\n",
                    static_cast<long long>(it.round),
                    static_cast<unsigned long long>(it.updates),
                    static_cast<unsigned long long>(it.compute_tasks),
                    static_cast<unsigned long long>(it.gather_tasks),
                    it.compute_seconds, it.gather_seconds,
                    it.barrier_wait_seconds,
                    static_cast<unsigned long long>(it.messages_produced),
                    static_cast<unsigned long long>(it.messages_consumed),
                    static_cast<unsigned long long>(it.partitions_skipped),
                    it.seconds);
      out << line;
    }
  }
  const auto counters = recorder.Counters();
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  const auto timers = recorder.Timers();
  if (!timers.empty()) {
    out << "timers:\n";
    for (const auto& [name, seconds] : timers) {
      out << "  " << name << " = " << Num(seconds) << "s\n";
    }
  }
  return out.str();
}

}  // namespace sqloop::telemetry
