#include "sql/lexer.h"

#include <cctype>
#include <charconv>
#include <unordered_set>

#include "common/error.h"
#include "common/strings.h"

namespace sqloop::sql {
namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const std::unordered_set<std::string> kKeywords = {
      // Core DML/DDL.
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
      "DESC", "LIMIT", "OFFSET", "AS", "ON", "JOIN", "INNER", "LEFT",
      "RIGHT", "FULL", "OUTER", "CROSS", "UNION", "ALL", "DISTINCT",
      "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE",
      "DROP", "TABLE", "INDEX", "VIEW", "IF", "EXISTS", "NOT", "PRIMARY",
      "KEY", "UNLOGGED", "ENGINE", "TRUNCATE", "DUMP", "RESTORE", "CHECK",
      "CHECKSUM",
      "TO",
      "AND", "OR", "IS", "NULL",
      "CASE", "WHEN", "THEN", "ELSE", "END", "BETWEEN", "IN", "LIKE",
      "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION",
      // Types.
      "BIGINT", "INT", "INTEGER", "DOUBLE", "PRECISION", "FLOAT", "TEXT",
      "VARCHAR", "REAL",
      // CTE and the SQLoop extension (paper §III-A / Table I).
      "WITH", "RECURSIVE", "ITERATIVE", "ITERATE", "UNTIL", "ITERATIONS",
      "UPDATES", "ANY", "DELTA",
      // Literals with keyword spelling.
      "TRUE", "FALSE", "INFINITY",
  };
  return kKeywords;
}

[[noreturn]] void Fail(std::string_view message, size_t offset) {
  throw ParseError(std::string(message) + " at byte " +
                   std::to_string(offset));
}

}  // namespace

bool IsReservedKeyword(std::string_view upper_word) noexcept {
  return KeywordSet().contains(std::string(upper_word));
}

std::string DescribeToken(const Token& token) {
  switch (token.kind) {
    case TokenKind::kEnd:
      return "<end of input>";
    case TokenKind::kIdentifier:
      return "identifier '" + token.text + "'";
    case TokenKind::kKeyword:
      return "keyword " + token.text;
    case TokenKind::kIntegerLiteral:
      return "integer " + std::to_string(token.int_value);
    case TokenKind::kDoubleLiteral:
      return "number " + std::to_string(token.double_value);
    case TokenKind::kStringLiteral:
      return "string '" + token.text + "'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kQuestion: return "'?'";
  }
  return "<token>";
}

std::vector<Token> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();

  const auto push = [&](TokenKind kind, size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const size_t start = i;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) ++i;
      if (i + 1 >= n) Fail("unterminated block comment", start);
      i += 2;
      continue;
    }
    // String literal.
    if (c == '\'') {
      const size_t start = i++;
      std::string body;
      while (true) {
        if (i >= n) Fail("unterminated string literal", start);
        if (source[i] == '\'') {
          if (i + 1 < n && source[i + 1] == '\'') {  // escaped quote
            body += '\'';
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        body += source[i++];
      }
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(body);
      t.offset = start;
      tokens.push_back(std::move(t));
      continue;
    }
    // Quoted identifier: "x" (postgres) or `x` (mysql family).
    if (c == '"' || c == '`') {
      const size_t start = i++;
      std::string body;
      while (i < n && source[i] != c) body += source[i++];
      if (i >= n) Fail("unterminated quoted identifier", start);
      ++i;
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = std::move(body);
      t.offset = start;
      t.quote = c;
      tokens.push_back(std::move(t));
      continue;
    }
    // Number literal.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      const size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && source[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (source[i] == '+' || source[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(source[i])))
          Fail("malformed exponent", start);
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      const std::string_view body = source.substr(start, i - start);
      Token t;
      t.offset = start;
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_value = std::stod(std::string(body));
      } else {
        t.kind = TokenKind::kIntegerLiteral;
        const auto result = std::from_chars(body.data(),
                                            body.data() + body.size(),
                                            t.int_value);
        if (result.ec != std::errc{}) Fail("integer literal overflow", start);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Identifier or keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      const std::string_view body = source.substr(start, i - start);
      const std::string upper = strings::ToUpper(body);
      Token t;
      t.offset = start;
      if (KeywordSet().contains(upper)) {
        t.kind = TokenKind::kKeyword;
        t.text = std::string(body);
        t.upper = upper;
      } else {
        t.kind = TokenKind::kIdentifier;
        t.text = std::string(body);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators / punctuation.
    const size_t start = i;
    switch (c) {
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '.': push(TokenKind::kDot, start); ++i; break;
      case ';': push(TokenKind::kSemicolon, start); ++i; break;
      case '?': push(TokenKind::kQuestion, start); ++i; break;
      case '=': push(TokenKind::kEq, start); ++i; break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNotEq, start);
          i += 2;
        } else {
          Fail("unexpected '!'", start);
        }
        break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLessEq, start);
          i += 2;
        } else if (i + 1 < n && source[i + 1] == '>') {
          push(TokenKind::kNotEq, start);
          i += 2;
        } else {
          push(TokenKind::kLess, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGreaterEq, start);
          i += 2;
        } else {
          push(TokenKind::kGreater, start);
          ++i;
        }
        break;
      default:
        Fail(std::string("unexpected character '") + c + "'", start);
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sqloop::sql
