#include "sql/printer.h"

#include <cctype>

#include "common/error.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace sqloop::sql {
namespace {

bool NeedsQuoting(const std::string& name) {
  if (name.empty()) return true;
  if (IsReservedKeyword(strings::ToUpper(name))) return true;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return true;
  }
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return true;
  }
  return false;
}

std::string TypeSpelling(const ColumnDef& def, Dialect dialect) {
  switch (def.type) {
    case ValueType::kInt64:
      return "BIGINT";
    case ValueType::kDouble:
      return std::string(DoubleTypeName(dialect));
    case ValueType::kText:
      return "TEXT";
    case ValueType::kNull:
      break;
  }
  throw UsageError("column '" + def.name + "' has no storable type");
}

}  // namespace

std::string QuoteIdentifier(const std::string& name, Dialect dialect) {
  if (!NeedsQuoting(name)) return name;
  const char q = IdentifierQuote(dialect);
  std::string out(1, q);
  for (const char c : name) {
    out += c;
    if (c == q) out += c;  // double the quote char to escape it
  }
  out += q;
  return out;
}

std::string PrintExpr(const Expr& expr, Dialect dialect) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.ToSqlLiteral();
    case ExprKind::kColumnRef: {
      std::string out;
      if (!expr.qualifier.empty()) {
        out += QuoteIdentifier(expr.qualifier, dialect);
        out += '.';
      }
      out += QuoteIdentifier(expr.column, dialect);
      return out;
    }
    case ExprKind::kStar:
      return expr.qualifier.empty()
                 ? "*"
                 : QuoteIdentifier(expr.qualifier, dialect) + ".*";
    case ExprKind::kUnary: {
      const std::string inner = PrintExpr(*expr.left, dialect);
      return expr.unary_op == UnaryOp::kNegate ? "(-" + inner + ")"
                                               : "(NOT " + inner + ")";
    }
    case ExprKind::kBinary:
      return "(" + PrintExpr(*expr.left, dialect) + " " +
             BinaryOpName(expr.binary_op) + " " +
             PrintExpr(*expr.right, dialect) + ")";
    case ExprKind::kFunction: {
      std::string out = expr.function_name + "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += PrintExpr(*expr.args[i], dialect);
      }
      out += ')';
      return out;
    }
    case ExprKind::kAggregate: {
      std::string out = std::string(AggFuncName(expr.agg_func)) + "(";
      if (expr.agg_star) {
        out += '*';
      } else {
        if (expr.agg_distinct) out += "DISTINCT ";
        out += PrintExpr(*expr.args[0], dialect);
      }
      out += ')';
      return out;
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      if (expr.case_operand) {
        out += ' ' + PrintExpr(*expr.case_operand, dialect);
      }
      for (const auto& when : expr.whens) {
        out += " WHEN " + PrintExpr(*when.condition, dialect) + " THEN " +
               PrintExpr(*when.result, dialect);
      }
      if (expr.else_expr) {
        out += " ELSE " + PrintExpr(*expr.else_expr, dialect);
      }
      out += " END";
      return out;
    }
    case ExprKind::kIsNull:
      return "(" + PrintExpr(*expr.left, dialect) +
             (expr.is_not_null ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::kParameter:
      return "?";
  }
  throw UsageError("unprintable expression");
}

std::string PrintTableRef(const TableRef& ref, Dialect dialect) {
  switch (ref.kind) {
    case TableRefKind::kBase: {
      std::string out = QuoteIdentifier(ref.table_name, dialect);
      if (!ref.alias.empty() && ref.alias != ref.table_name) {
        out += " AS " + QuoteIdentifier(ref.alias, dialect);
      }
      return out;
    }
    case TableRefKind::kJoin: {
      std::string out = PrintTableRef(*ref.left, dialect);
      switch (ref.join_kind) {
        case JoinKind::kInner:
          out += " JOIN ";
          break;
        case JoinKind::kLeft:
          out += " LEFT JOIN ";
          break;
        case JoinKind::kCross:
          out += " CROSS JOIN ";
          break;
      }
      // Parenthesize nested right-side joins to keep associativity.
      if (ref.right->kind == TableRefKind::kJoin) {
        out += "(" + PrintTableRef(*ref.right, dialect) + ")";
      } else {
        out += PrintTableRef(*ref.right, dialect);
      }
      if (ref.on_condition) {
        out += " ON " + PrintExpr(*ref.on_condition, dialect);
      }
      return out;
    }
    case TableRefKind::kSubquery:
      return "(" + PrintSelect(*ref.subquery, dialect) + ") AS " +
             QuoteIdentifier(ref.alias, dialect);
  }
  throw UsageError("unprintable table reference");
}

namespace {

std::string PrintCore(const SelectCore& core, Dialect dialect) {
  std::string out = "SELECT ";
  if (core.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < core.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += PrintExpr(*core.items[i].expr, dialect);
    if (!core.items[i].alias.empty() &&
        core.items[i].expr->kind != ExprKind::kStar) {
      out += " AS " + QuoteIdentifier(core.items[i].alias, dialect);
    }
  }
  if (core.from) out += " FROM " + PrintTableRef(*core.from, dialect);
  if (core.where) out += " WHERE " + PrintExpr(*core.where, dialect);
  if (!core.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < core.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintExpr(*core.group_by[i], dialect);
    }
  }
  if (core.having) out += " HAVING " + PrintExpr(*core.having, dialect);
  return out;
}

}  // namespace

std::string PrintSelect(const SelectStmt& select, Dialect dialect) {
  std::string out;
  for (size_t i = 0; i < select.cores.size(); ++i) {
    if (i > 0) {
      out += select.set_ops[i - 1] == SetOp::kUnionAll ? " UNION ALL "
                                                       : " UNION ";
    }
    out += PrintCore(select.cores[i], dialect);
  }
  if (!select.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < select.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintExpr(*select.order_by[i].expr, dialect);
      if (!select.order_by[i].ascending) out += " DESC";
    }
  }
  if (select.limit) out += " LIMIT " + std::to_string(*select.limit);
  if (select.offset) out += " OFFSET " + std::to_string(*select.offset);
  return out;
}

std::string PrintTermination(const Termination& tc, Dialect dialect) {
  switch (tc.kind) {
    case Termination::Kind::kIterations:
      return std::to_string(tc.count) + " ITERATIONS";
    case Termination::Kind::kUpdates:
      return std::to_string(tc.count) + " UPDATES";
    case Termination::Kind::kProbeAll:
      return std::string(tc.delta ? "DELTA " : "") + "(" +
             PrintSelect(*tc.probe, dialect) + ")";
    case Termination::Kind::kProbeAny:
      return std::string("ANY ") + (tc.delta ? "DELTA " : "") + "(" +
             PrintSelect(*tc.probe, dialect) + ")";
    case Termination::Kind::kProbeCompare:
      return std::string(tc.delta ? "DELTA " : "") + "(" +
             PrintSelect(*tc.probe, dialect) + ") " + tc.comparator + " " +
             tc.bound.ToSqlLiteral();
  }
  throw UsageError("unprintable termination condition");
}

std::string PrintStatement(const Statement& stmt, Dialect dialect) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return PrintSelect(*stmt.select, dialect);
    case StatementKind::kCreateTable: {
      std::string out = "CREATE ";
      if (stmt.unlogged && SupportsUnloggedTables(dialect)) out += "UNLOGGED ";
      out += "TABLE ";
      if (stmt.if_not_exists) out += "IF NOT EXISTS ";
      out += QuoteIdentifier(stmt.table_name, dialect) + " (";
      for (size_t i = 0; i < stmt.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += QuoteIdentifier(stmt.columns[i].name, dialect) + " " +
               TypeSpelling(stmt.columns[i], dialect);
        if (static_cast<int>(i) == stmt.primary_key_index) {
          out += " PRIMARY KEY";
        }
      }
      out += ")";
      if (!stmt.engine_option.empty() && SupportsEngineTableOption(dialect)) {
        out += " ENGINE=" + stmt.engine_option;
      } else if (stmt.unlogged && IsMySqlFamily(dialect)) {
        // The MySQL-family spelling of "skip transactional logging".
        out += " ENGINE=MyISAM";
      }
      return out;
    }
    case StatementKind::kDropTable:
      return std::string("DROP TABLE ") + (stmt.if_exists ? "IF EXISTS " : "") +
             QuoteIdentifier(stmt.table_name, dialect);
    case StatementKind::kCreateIndex: {
      std::string out = "CREATE INDEX " +
                        QuoteIdentifier(stmt.index_name, dialect) + " ON " +
                        QuoteIdentifier(stmt.table_name, dialect) + " (";
      for (size_t i = 0; i < stmt.index_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += QuoteIdentifier(stmt.index_columns[i], dialect);
      }
      out += ")";
      return out;
    }
    case StatementKind::kDropIndex: {
      std::string out = std::string("DROP INDEX ") +
                        (stmt.if_exists ? "IF EXISTS " : "") +
                        QuoteIdentifier(stmt.index_name, dialect);
      if (IsMySqlFamily(dialect) || !stmt.table_name.empty()) {
        if (stmt.table_name.empty()) {
          throw UsageError("DROP INDEX requires ON <table> for MySQL dialects");
        }
        out += " ON " + QuoteIdentifier(stmt.table_name, dialect);
      }
      return out;
    }
    case StatementKind::kCreateView:
      return "CREATE VIEW " + QuoteIdentifier(stmt.table_name, dialect) +
             " AS " + PrintSelect(*stmt.view_select, dialect);
    case StatementKind::kDropView:
      return std::string("DROP VIEW ") + (stmt.if_exists ? "IF EXISTS " : "") +
             QuoteIdentifier(stmt.table_name, dialect);
    case StatementKind::kInsert: {
      std::string out = "INSERT INTO " +
                        QuoteIdentifier(stmt.table_name, dialect);
      if (!stmt.insert_columns.empty()) {
        out += " (";
        for (size_t i = 0; i < stmt.insert_columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += QuoteIdentifier(stmt.insert_columns[i], dialect);
        }
        out += ")";
      }
      if (stmt.insert_select) {
        out += " " + PrintSelect(*stmt.insert_select, dialect);
      } else {
        out += " VALUES ";
        for (size_t r = 0; r < stmt.insert_rows.size(); ++r) {
          if (r > 0) out += ", ";
          out += "(";
          for (size_t c = 0; c < stmt.insert_rows[r].size(); ++c) {
            if (c > 0) out += ", ";
            out += PrintExpr(*stmt.insert_rows[r][c], dialect);
          }
          out += ")";
        }
      }
      return out;
    }
    case StatementKind::kUpdate: {
      std::string out = "UPDATE " + QuoteIdentifier(stmt.table_name, dialect);
      if (!stmt.update_alias.empty()) {
        out += " AS " + QuoteIdentifier(stmt.update_alias, dialect);
      }
      out += " SET ";
      for (size_t i = 0; i < stmt.set_items.size(); ++i) {
        if (i > 0) out += ", ";
        out += QuoteIdentifier(stmt.set_items[i].first, dialect) + " = " +
               PrintExpr(*stmt.set_items[i].second, dialect);
      }
      if (stmt.update_from) {
        out += " FROM " + PrintTableRef(*stmt.update_from, dialect);
      }
      if (stmt.where) out += " WHERE " + PrintExpr(*stmt.where, dialect);
      return out;
    }
    case StatementKind::kDelete: {
      std::string out =
          "DELETE FROM " + QuoteIdentifier(stmt.table_name, dialect);
      if (stmt.where) out += " WHERE " + PrintExpr(*stmt.where, dialect);
      return out;
    }
    case StatementKind::kTruncate:
      return "TRUNCATE TABLE " + QuoteIdentifier(stmt.table_name, dialect);
    case StatementKind::kDumpTable:
      return "DUMP TABLE " + QuoteIdentifier(stmt.table_name, dialect) +
             " TO " + Value(stmt.file_path).ToSqlLiteral();
    case StatementKind::kRestoreTable:
      return "RESTORE TABLE " + QuoteIdentifier(stmt.table_name, dialect) +
             " FROM " + Value(stmt.file_path).ToSqlLiteral();
    case StatementKind::kCheckTable:
      return "CHECK TABLE " + QuoteIdentifier(stmt.table_name, dialect);
    case StatementKind::kChecksumTable:
      return "CHECKSUM TABLE " + QuoteIdentifier(stmt.table_name, dialect);
    case StatementKind::kBegin:
      return "BEGIN";
    case StatementKind::kCommit:
      return "COMMIT";
    case StatementKind::kRollback:
      return "ROLLBACK";
    case StatementKind::kWith: {
      const WithClause& with = stmt.with;
      std::string out = "WITH ";
      switch (with.kind) {
        case CteKind::kPlain:
          break;
        case CteKind::kRecursive:
          out += "RECURSIVE ";
          break;
        case CteKind::kIterative:
          out += "ITERATIVE ";
          break;
      }
      out += QuoteIdentifier(with.name, dialect);
      if (!with.columns.empty()) {
        out += " (";
        for (size_t i = 0; i < with.columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += QuoteIdentifier(with.columns[i], dialect);
        }
        out += ")";
      }
      out += " AS (" + PrintSelect(*with.seed, dialect);
      if (with.kind == CteKind::kRecursive) {
        out += " UNION ALL " + PrintSelect(*with.step, dialect);
      } else if (with.kind == CteKind::kIterative) {
        out += " ITERATE " + PrintSelect(*with.step, dialect) + " UNTIL " +
               PrintTermination(with.termination, dialect);
      }
      out += ") " + PrintSelect(*with.final_query, dialect);
      return out;
    }
  }
  throw UsageError("unprintable statement");
}

}  // namespace sqloop::sql
