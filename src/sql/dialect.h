// SQL dialects understood by the translation module and enforced by the
// engine profiles.
//
// The paper's translation module "contains pre-defined rules that dictate
// how a given type of query should be rewritten for a given target database
// engine". We reproduce the genuinely divergent bits of the three engines
// the paper evaluates:
//   * double column type:   DOUBLE PRECISION (PostgreSQL) vs DOUBLE (MySQL
//     and MariaDB)
//   * no-logging tables:    CREATE UNLOGGED TABLE (PostgreSQL) vs a
//     trailing ENGINE=MyISAM option (MySQL/MariaDB)
//   * identifier quoting:   "ident" (PostgreSQL) vs `ident` (MySQL/MariaDB)
#pragma once

#include <string_view>

namespace sqloop {

enum class Dialect { kCanonical, kPostgres, kMySql, kMariaDb };

constexpr std::string_view DialectName(Dialect d) noexcept {
  switch (d) {
    case Dialect::kCanonical:
      return "canonical";
    case Dialect::kPostgres:
      return "postgres";
    case Dialect::kMySql:
      return "mysql";
    case Dialect::kMariaDb:
      return "mariadb";
  }
  return "?";
}

constexpr bool IsMySqlFamily(Dialect d) noexcept {
  return d == Dialect::kMySql || d == Dialect::kMariaDb;
}

/// Spelling of the 8-byte float type in this dialect.
constexpr std::string_view DoubleTypeName(Dialect d) noexcept {
  return d == Dialect::kPostgres ? "DOUBLE PRECISION" : "DOUBLE";
}

/// Identifier quote character (only emitted for reserved-word collisions).
constexpr char IdentifierQuote(Dialect d) noexcept {
  return IsMySqlFamily(d) ? '`' : '"';
}

/// Whether CREATE UNLOGGED TABLE is accepted.
constexpr bool SupportsUnloggedTables(Dialect d) noexcept {
  return d == Dialect::kPostgres || d == Dialect::kCanonical;
}

/// Whether the trailing ENGINE=<name> table option is accepted.
constexpr bool SupportsEngineTableOption(Dialect d) noexcept {
  return IsMySqlFamily(d) || d == Dialect::kCanonical;
}

}  // namespace sqloop
