// Renders ASTs back to SQL text. The `Dialect` parameter is what makes the
// SQLoop translation module (paper §IV-B) concrete: the same canonical AST
// prints as valid PostgreSQL, MySQL, or MariaDB SQL.
#pragma once

#include <string>

#include "sql/ast.h"
#include "sql/dialect.h"

namespace sqloop::sql {

std::string PrintExpr(const Expr& expr, Dialect dialect = Dialect::kCanonical);

std::string PrintTableRef(const TableRef& ref,
                          Dialect dialect = Dialect::kCanonical);

std::string PrintSelect(const SelectStmt& select,
                        Dialect dialect = Dialect::kCanonical);

std::string PrintTermination(const Termination& tc,
                             Dialect dialect = Dialect::kCanonical);

std::string PrintStatement(const Statement& stmt,
                           Dialect dialect = Dialect::kCanonical);

/// Quotes `name` with the dialect's identifier quote if it collides with a
/// reserved keyword or contains characters outside [A-Za-z0-9_].
std::string QuoteIdentifier(const std::string& name, Dialect dialect);

}  // namespace sqloop::sql
