#include "sql/parser.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace sqloop::sql {
namespace {

/// Names treated as aggregate functions when used in call position.
const std::unordered_map<std::string, AggFunc>& AggregateNames() {
  static const std::unordered_map<std::string, AggFunc> kAggs = {
      {"SUM", AggFunc::kSum},   {"MIN", AggFunc::kMin},
      {"MAX", AggFunc::kMax},   {"COUNT", AggFunc::kCount},
      {"AVG", AggFunc::kAvg},
  };
  return kAggs;
}

class Parser {
 public:
  explicit Parser(std::string_view source)
      : source_(source), tokens_(Tokenize(source)) {}

  StatementPtr ParseSingleStatement() {
    auto stmt = ParseStatementInternal();
    Accept(TokenKind::kSemicolon);
    Expect(TokenKind::kEnd);
    return stmt;
  }

  std::vector<StatementPtr> ParseAll() {
    std::vector<StatementPtr> out;
    while (!Check(TokenKind::kEnd)) {
      if (Accept(TokenKind::kSemicolon)) continue;
      out.push_back(ParseStatementInternal());
      if (!Check(TokenKind::kEnd)) Expect(TokenKind::kSemicolon);
    }
    return out;
  }

  SelectPtr ParseBareSelect() {
    auto select = ParseSelectStmt();
    Accept(TokenKind::kSemicolon);
    Expect(TokenKind::kEnd);
    return select;
  }

 private:
  // --- token plumbing -------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    const size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool CheckKeyword(std::string_view word) const {
    return Peek().IsKeyword(word);
  }

  // Keywords that the grammar only needs in specific positions; elsewhere
  // they behave as ordinary identifiers (the paper's queries use `Delta`
  // as a column name, for instance).
  static bool IsSoftKeyword(const Token& t) noexcept {
    return t.kind == TokenKind::kKeyword &&
           (t.upper == "DELTA" || t.upper == "ITERATIONS" ||
            t.upper == "UPDATES" || t.upper == "ENGINE" || t.upper == "ANY");
  }

  bool CheckIdentifierLike() const {
    return Check(TokenKind::kIdentifier) || IsSoftKeyword(Peek());
  }

  bool Accept(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  bool AcceptKeyword(std::string_view word) {
    if (!CheckKeyword(word)) return false;
    Advance();
    return true;
  }

  const Token& Expect(TokenKind kind, std::string_view what = {}) {
    if (!Check(kind)) {
      Fail(std::string("expected ") +
           (what.empty() ? "token" : std::string(what)) + ", found " +
           DescribeToken(Peek()));
    }
    return Advance();
  }

  void ExpectKeyword(std::string_view word) {
    if (!AcceptKeyword(word)) {
      Fail("expected " + std::string(word) + ", found " +
           DescribeToken(Peek()));
    }
  }

  std::string ExpectIdentifier(std::string_view what) {
    if (CheckIdentifierLike()) return Advance().text;
    Fail("expected " + std::string(what) + ", found " + DescribeToken(Peek()));
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message + " (near byte " +
                     std::to_string(Peek().offset) + " of: " +
                     std::string(source_.substr(0, 120)) + "...)");
  }

  // --- statements -----------------------------------------------------
  StatementPtr ParseStatementInternal() {
    if (CheckKeyword("SELECT") || CheckKeyword("VALUES")) {
      auto stmt = std::make_unique<Statement>();
      stmt->kind = StatementKind::kSelect;
      stmt->select = ParseSelectStmt();
      return stmt;
    }
    if (CheckKeyword("WITH")) return ParseWith();
    if (CheckKeyword("CREATE")) return ParseCreate();
    if (CheckKeyword("DROP")) return ParseDrop();
    if (CheckKeyword("INSERT")) return ParseInsert();
    if (CheckKeyword("UPDATE")) return ParseUpdate();
    if (CheckKeyword("DELETE")) return ParseDelete();
    if (CheckKeyword("TRUNCATE")) return ParseTruncate();
    if (CheckKeyword("DUMP")) return ParseDump();
    if (CheckKeyword("RESTORE")) return ParseRestore();
    if (CheckKeyword("CHECK")) return ParseCheck();
    if (CheckKeyword("CHECKSUM")) return ParseChecksum();
    if (AcceptKeyword("BEGIN")) {
      AcceptKeyword("TRANSACTION");
      auto stmt = std::make_unique<Statement>();
      stmt->kind = StatementKind::kBegin;
      return stmt;
    }
    if (AcceptKeyword("COMMIT")) {
      auto stmt = std::make_unique<Statement>();
      stmt->kind = StatementKind::kCommit;
      return stmt;
    }
    if (AcceptKeyword("ROLLBACK")) {
      auto stmt = std::make_unique<Statement>();
      stmt->kind = StatementKind::kRollback;
      return stmt;
    }
    Fail("expected a statement, found " + DescribeToken(Peek()));
  }

  StatementPtr ParseWith() {
    ExpectKeyword("WITH");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kWith;
    WithClause& with = stmt->with;
    if (AcceptKeyword("RECURSIVE")) {
      with.kind = CteKind::kRecursive;
    } else if (AcceptKeyword("ITERATIVE")) {
      with.kind = CteKind::kIterative;
    } else {
      with.kind = CteKind::kPlain;
    }
    with.name = ExpectIdentifier("CTE name");
    if (Accept(TokenKind::kLParen)) {
      do {
        with.columns.push_back(ExpectIdentifier("CTE column name"));
      } while (Accept(TokenKind::kComma));
      Expect(TokenKind::kRParen, "')'");
    }
    ExpectKeyword("AS");
    Expect(TokenKind::kLParen, "'(' before CTE body");

    switch (with.kind) {
      case CteKind::kPlain:
        with.seed = ParseSelectStmt();
        break;
      case CteKind::kRecursive: {
        // Body is `R0 UNION ALL Ri`; R0 itself may be a UNION chain, so the
        // recursive member is the *last* core of the parsed chain.
        auto body = ParseSelectStmt();
        if (body->cores.size() < 2) {
          Fail("recursive CTE body must be 'seed UNION ALL step'");
        }
        if (body->set_ops.back() != SetOp::kUnionAll) {
          Fail("recursive CTE requires UNION ALL before the recursive member");
        }
        auto step = std::make_unique<SelectStmt>();
        step->cores.push_back(std::move(body->cores.back()));
        body->cores.pop_back();
        body->set_ops.pop_back();
        with.seed = std::move(body);
        with.step = std::move(step);
        break;
      }
      case CteKind::kIterative: {
        with.seed = ParseSelectStmt(/*stop_at_iterate=*/true);
        ExpectKeyword("ITERATE");
        with.step = ParseSelectStmt(/*stop_at_iterate=*/true);
        ExpectKeyword("UNTIL");
        with.termination = ParseTermination();
        break;
      }
    }
    Expect(TokenKind::kRParen, "')' after CTE body");
    with.final_query = ParseSelectStmt();
    return stmt;
  }

  /// Table I grammar:
  ///   n ITERATIONS | n UPDATES
  ///   [ANY] [DELTA] (expr) [ <|=|> literal ]
  Termination ParseTermination() {
    Termination tc;
    if (Check(TokenKind::kIntegerLiteral)) {
      tc.count = Advance().int_value;
      if (AcceptKeyword("ITERATIONS")) {
        tc.kind = Termination::Kind::kIterations;
        if (tc.count <= 0) Fail("ITERATIONS count must be positive");
      } else if (AcceptKeyword("UPDATES")) {
        tc.kind = Termination::Kind::kUpdates;
        if (tc.count < 0) Fail("UPDATES count must be non-negative");
      } else {
        Fail("expected ITERATIONS or UPDATES after count");
      }
      return tc;
    }
    const bool any = AcceptKeyword("ANY");
    tc.delta = AcceptKeyword("DELTA");
    Expect(TokenKind::kLParen, "'(' before termination expression");
    tc.probe = ParseSelectStmt();
    Expect(TokenKind::kRParen, "')' after termination expression");
    if (Check(TokenKind::kLess) || Check(TokenKind::kEq) ||
        Check(TokenKind::kGreater)) {
      if (any) Fail("ANY cannot be combined with a comparison bound");
      tc.kind = Termination::Kind::kProbeCompare;
      const TokenKind op = Advance().kind;
      tc.comparator = op == TokenKind::kLess ? '<'
                      : op == TokenKind::kEq ? '='
                                             : '>';
      tc.bound = ParseLiteralValue();
      return tc;
    }
    tc.kind = any ? Termination::Kind::kProbeAny : Termination::Kind::kProbeAll;
    return tc;
  }

  Value ParseLiteralValue() {
    bool negative = false;
    if (Accept(TokenKind::kMinus)) negative = true;
    if (Check(TokenKind::kIntegerLiteral)) {
      const int64_t v = Advance().int_value;
      return Value(negative ? -v : v);
    }
    if (Check(TokenKind::kDoubleLiteral)) {
      const double v = Advance().double_value;
      return Value(negative ? -v : v);
    }
    if (AcceptKeyword("INFINITY")) {
      const double inf = std::numeric_limits<double>::infinity();
      return Value(negative ? -inf : inf);
    }
    if (Check(TokenKind::kStringLiteral)) {
      if (negative) Fail("cannot negate a string literal");
      return Value(Advance().text);
    }
    Fail("expected a literal, found " + DescribeToken(Peek()));
  }

  StatementPtr ParseCreate() {
    ExpectKeyword("CREATE");
    auto stmt = std::make_unique<Statement>();
    if (AcceptKeyword("UNLOGGED")) {
      stmt->unlogged = true;
      ExpectKeyword("TABLE");
      return ParseCreateTableBody(std::move(stmt));
    }
    if (AcceptKeyword("TABLE")) return ParseCreateTableBody(std::move(stmt));
    if (AcceptKeyword("INDEX")) {
      stmt->kind = StatementKind::kCreateIndex;
      stmt->index_name = ExpectIdentifier("index name");
      ExpectKeyword("ON");
      stmt->table_name = ExpectIdentifier("table name");
      Expect(TokenKind::kLParen, "'('");
      do {
        stmt->index_columns.push_back(ExpectIdentifier("column name"));
      } while (Accept(TokenKind::kComma));
      Expect(TokenKind::kRParen, "')'");
      return stmt;
    }
    if (AcceptKeyword("VIEW")) {
      stmt->kind = StatementKind::kCreateView;
      stmt->table_name = ExpectIdentifier("view name");
      ExpectKeyword("AS");
      stmt->view_select = ParseSelectStmt();
      return stmt;
    }
    Fail("expected TABLE, INDEX or VIEW after CREATE");
  }

  StatementPtr ParseCreateTableBody(StatementPtr stmt) {
    stmt->kind = StatementKind::kCreateTable;
    if (AcceptKeyword("IF")) {
      ExpectKeyword("NOT");
      ExpectKeyword("EXISTS");
      stmt->if_not_exists = true;
    }
    stmt->table_name = ExpectIdentifier("table name");
    Expect(TokenKind::kLParen, "'('");
    do {
      ColumnDef def;
      def.name = ExpectIdentifier("column name");
      ParseColumnType(def);
      if (AcceptKeyword("PRIMARY")) {
        ExpectKeyword("KEY");
        if (stmt->primary_key_index >= 0) Fail("multiple PRIMARY KEY columns");
        stmt->primary_key_index = static_cast<int>(stmt->columns.size());
      }
      stmt->columns.push_back(std::move(def));
    } while (Accept(TokenKind::kComma));
    Expect(TokenKind::kRParen, "')'");
    if (AcceptKeyword("ENGINE")) {
      Expect(TokenKind::kEq, "'=' after ENGINE");
      stmt->engine_option = ExpectIdentifier("storage engine name");
    }
    return stmt;
  }

  void ParseColumnType(ColumnDef& def) {
    if (!Check(TokenKind::kKeyword)) {
      Fail("expected a column type, found " + DescribeToken(Peek()));
    }
    const std::string word = Advance().upper;
    if (word == "BIGINT" || word == "INT" || word == "INTEGER") {
      def.type = ValueType::kInt64;
      def.type_spelling = word;
      return;
    }
    if (word == "DOUBLE") {
      def.type = ValueType::kDouble;
      def.type_spelling = "DOUBLE";
      if (AcceptKeyword("PRECISION")) def.type_spelling = "DOUBLE PRECISION";
      return;
    }
    if (word == "FLOAT" || word == "REAL") {
      def.type = ValueType::kDouble;
      def.type_spelling = word;
      return;
    }
    if (word == "TEXT") {
      def.type = ValueType::kText;
      def.type_spelling = word;
      return;
    }
    if (word == "VARCHAR") {
      def.type = ValueType::kText;
      def.type_spelling = word;
      if (Accept(TokenKind::kLParen)) {
        Expect(TokenKind::kIntegerLiteral, "VARCHAR length");
        Expect(TokenKind::kRParen, "')'");
      }
      return;
    }
    Fail("unsupported column type " + word);
  }

  StatementPtr ParseDrop() {
    ExpectKeyword("DROP");
    auto stmt = std::make_unique<Statement>();
    if (AcceptKeyword("TABLE")) {
      stmt->kind = StatementKind::kDropTable;
    } else if (AcceptKeyword("INDEX")) {
      stmt->kind = StatementKind::kDropIndex;
    } else if (AcceptKeyword("VIEW")) {
      stmt->kind = StatementKind::kDropView;
    } else {
      Fail("expected TABLE, INDEX or VIEW after DROP");
    }
    if (AcceptKeyword("IF")) {
      ExpectKeyword("EXISTS");
      stmt->if_exists = true;
    }
    if (stmt->kind == StatementKind::kDropIndex) {
      stmt->index_name = ExpectIdentifier("index name");
      if (AcceptKeyword("ON")) {
        stmt->table_name = ExpectIdentifier("table name");
      }
    } else {
      stmt->table_name = ExpectIdentifier("name");
    }
    return stmt;
  }

  StatementPtr ParseInsert() {
    ExpectKeyword("INSERT");
    ExpectKeyword("INTO");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kInsert;
    stmt->table_name = ExpectIdentifier("table name");
    if (Check(TokenKind::kLParen)) {
      // Could be a column list or a parenthesized SELECT; disambiguate by
      // the token after '('.
      if (Peek(1).kind == TokenKind::kIdentifier &&
          (Peek(2).kind == TokenKind::kComma ||
           Peek(2).kind == TokenKind::kRParen)) {
        Advance();  // '('
        do {
          stmt->insert_columns.push_back(ExpectIdentifier("column name"));
        } while (Accept(TokenKind::kComma));
        Expect(TokenKind::kRParen, "')'");
      }
    }
    if (AcceptKeyword("VALUES")) {
      do {
        Expect(TokenKind::kLParen, "'('");
        std::vector<ExprPtr> row;
        do {
          row.push_back(ParseExpr());
        } while (Accept(TokenKind::kComma));
        Expect(TokenKind::kRParen, "')'");
        stmt->insert_rows.push_back(std::move(row));
      } while (Accept(TokenKind::kComma));
      return stmt;
    }
    stmt->insert_select = ParseSelectStmt();
    return stmt;
  }

  StatementPtr ParseUpdate() {
    ExpectKeyword("UPDATE");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kUpdate;
    stmt->table_name = ExpectIdentifier("table name");
    if (AcceptKeyword("AS")) {
      stmt->update_alias = ExpectIdentifier("alias");
    } else if (CheckIdentifierLike()) {
      stmt->update_alias = Advance().text;
    }
    ExpectKeyword("SET");
    do {
      std::string column = ExpectIdentifier("column name");
      // Tolerate a qualified target column (alias.col).
      if (Accept(TokenKind::kDot)) column = ExpectIdentifier("column name");
      Expect(TokenKind::kEq, "'='");
      stmt->set_items.emplace_back(std::move(column), ParseExpr());
    } while (Accept(TokenKind::kComma));
    if (AcceptKeyword("FROM")) stmt->update_from = ParseTableRef();
    if (AcceptKeyword("WHERE")) stmt->where = ParseExpr();
    return stmt;
  }

  StatementPtr ParseDelete() {
    ExpectKeyword("DELETE");
    ExpectKeyword("FROM");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kDelete;
    stmt->table_name = ExpectIdentifier("table name");
    if (AcceptKeyword("WHERE")) stmt->where = ParseExpr();
    return stmt;
  }

  StatementPtr ParseTruncate() {
    ExpectKeyword("TRUNCATE");
    AcceptKeyword("TABLE");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kTruncate;
    stmt->table_name = ExpectIdentifier("table name");
    return stmt;
  }

  // DUMP TABLE t TO '<path>' / RESTORE TABLE t FROM '<path>' — the
  // checkpoint fast path (DESIGN.md "Checkpointing & recovery").
  StatementPtr ParseDump() {
    ExpectKeyword("DUMP");
    AcceptKeyword("TABLE");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kDumpTable;
    stmt->table_name = ExpectIdentifier("table name");
    ExpectKeyword("TO");
    stmt->file_path = ExpectFilePath();
    return stmt;
  }

  StatementPtr ParseRestore() {
    ExpectKeyword("RESTORE");
    AcceptKeyword("TABLE");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kRestoreTable;
    stmt->table_name = ExpectIdentifier("table name");
    ExpectKeyword("FROM");
    stmt->file_path = ExpectFilePath();
    return stmt;
  }

  // CHECK TABLE t — verifies the table's maintained content checksum
  // against a recomputation (the scrub primitive; DESIGN.md "Durability &
  // integrity").
  StatementPtr ParseCheck() {
    ExpectKeyword("CHECK");
    AcceptKeyword("TABLE");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kCheckTable;
    stmt->table_name = ExpectIdentifier("table name");
    return stmt;
  }

  // CHECKSUM TABLE t — reports the incrementally-maintained content
  // checksum without rescanning (O(1); checkpoint change detection).
  StatementPtr ParseChecksum() {
    ExpectKeyword("CHECKSUM");
    AcceptKeyword("TABLE");
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kChecksumTable;
    stmt->table_name = ExpectIdentifier("table name");
    return stmt;
  }

  std::string ExpectFilePath() {
    if (!Check(TokenKind::kStringLiteral)) {
      Fail("expected a quoted file path, found " + DescribeToken(Peek()));
    }
    return Advance().text;
  }

  // --- SELECT ---------------------------------------------------------
  //
  // `stop_at_iterate` prevents the UNION-chain loop from consuming the
  // ITERATE/UNTIL keywords that delimit iterative-CTE members.
  SelectPtr ParseSelectStmt(bool stop_at_iterate = false) {
    auto stmt = std::make_unique<SelectStmt>();
    ParseCoreInto(*stmt);
    while (CheckKeyword("UNION")) {
      if (stop_at_iterate &&
          (Peek(1).IsKeyword("ITERATE") || Peek(1).IsKeyword("UNTIL"))) {
        break;
      }
      Advance();
      const SetOp op =
          AcceptKeyword("ALL") ? SetOp::kUnionAll : SetOp::kUnion;
      stmt->set_ops.push_back(op);
      ParseCoreInto(*stmt);
    }
    if (AcceptKeyword("ORDER")) {
      ExpectKeyword("BY");
      do {
        OrderItem item;
        item.expr = ParseExpr();
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("LIMIT")) {
      stmt->limit = Expect(TokenKind::kIntegerLiteral, "LIMIT count")
                        .int_value;
      if (AcceptKeyword("OFFSET")) {
        stmt->offset = Expect(TokenKind::kIntegerLiteral, "OFFSET count")
                           .int_value;
      }
    }
    return stmt;
  }

  void ParseCoreInto(SelectStmt& stmt) {
    if (AcceptKeyword("VALUES")) {
      // VALUES (a, b), (c, d) — one FROM-less core per row, joined by
      // UNION ALL (matches the set semantics of a VALUES list).
      bool first = true;
      do {
        Expect(TokenKind::kLParen, "'('");
        SelectCore core;
        size_t column = 0;
        do {
          SelectItem item;
          item.expr = ParseExpr();
          item.alias = "column" + std::to_string(++column);
          core.items.push_back(std::move(item));
        } while (Accept(TokenKind::kComma));
        Expect(TokenKind::kRParen, "')'");
        if (!first) stmt.set_ops.push_back(SetOp::kUnionAll);
        stmt.cores.push_back(std::move(core));
        first = false;
      } while (Accept(TokenKind::kComma));
      return;
    }
    if (Check(TokenKind::kLParen)) {
      // Parenthesized core: (SELECT ...). Parse and splice.
      Advance();
      auto inner = ParseSelectStmt();
      Expect(TokenKind::kRParen, "')'");
      if (!inner->order_by.empty() || inner->limit) {
        Fail("ORDER BY/LIMIT not supported inside parenthesized UNION arm");
      }
      for (size_t i = 0; i < inner->cores.size(); ++i) {
        if (i > 0) stmt.set_ops.push_back(inner->set_ops[i - 1]);
        stmt.cores.push_back(std::move(inner->cores[i]));
      }
      return;
    }
    ExpectKeyword("SELECT");
    SelectCore core;
    core.distinct = AcceptKeyword("DISTINCT");
    do {
      SelectItem item;
      if (Check(TokenKind::kStar)) {
        Advance();
        item.expr = MakeStar();
      } else {
        item.expr = ParseExpr();
        if (AcceptKeyword("AS")) {
          item.alias = ExpectIdentifier("column alias");
        } else if (CheckIdentifierLike()) {
          item.alias = Advance().text;
        }
      }
      core.items.push_back(std::move(item));
    } while (Accept(TokenKind::kComma));
    if (AcceptKeyword("FROM")) core.from = ParseTableRef();
    if (AcceptKeyword("WHERE")) core.where = ParseExpr();
    if (AcceptKeyword("GROUP")) {
      ExpectKeyword("BY");
      do {
        core.group_by.push_back(ParseExpr());
      } while (Accept(TokenKind::kComma));
    }
    if (AcceptKeyword("HAVING")) core.having = ParseExpr();
    stmt.cores.push_back(std::move(core));
  }

  // --- FROM clauses ----------------------------------------------------
  TableRefPtr ParseTableRef() {
    auto left = ParseJoinChain();
    while (Accept(TokenKind::kComma)) {
      auto right = ParseJoinChain();
      left = MakeJoin(JoinKind::kCross, std::move(left), std::move(right),
                      nullptr);
    }
    return left;
  }

  TableRefPtr ParseJoinChain() {
    auto left = ParsePrimaryRef();
    while (true) {
      JoinKind kind;
      if (AcceptKeyword("JOIN")) {
        kind = JoinKind::kInner;
      } else if (CheckKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        kind = JoinKind::kInner;
      } else if (CheckKeyword("LEFT")) {
        Advance();
        AcceptKeyword("OUTER");
        ExpectKeyword("JOIN");
        kind = JoinKind::kLeft;
      } else if (CheckKeyword("CROSS") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        auto right = ParsePrimaryRef();
        left = MakeJoin(JoinKind::kCross, std::move(left), std::move(right),
                        nullptr);
        continue;
      } else {
        return left;
      }
      auto right = ParsePrimaryRef();
      ExpectKeyword("ON");
      auto on = ParseExpr();
      left = MakeJoin(kind, std::move(left), std::move(right), std::move(on));
    }
  }

  TableRefPtr ParsePrimaryRef() {
    if (Accept(TokenKind::kLParen)) {
      auto select = ParseSelectStmt();
      Expect(TokenKind::kRParen, "')'");
      std::string alias;
      AcceptKeyword("AS");
      alias = ExpectIdentifier("subquery alias");
      return MakeSubquery(std::move(select), std::move(alias));
    }
    const std::string table = ExpectIdentifier("table name");
    std::string alias;
    if (AcceptKeyword("AS")) {
      alias = ExpectIdentifier("table alias");
    } else if (CheckIdentifierLike()) {
      alias = Advance().text;
    }
    return MakeBaseTable(table, alias);
  }

  // --- expressions ------------------------------------------------------
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    auto left = ParseAnd();
    while (AcceptKeyword("OR")) {
      left = MakeBinary(BinaryOp::kOr, std::move(left), ParseAnd());
    }
    return left;
  }

  ExprPtr ParseAnd() {
    auto left = ParseNot();
    while (AcceptKeyword("AND")) {
      left = MakeBinary(BinaryOp::kAnd, std::move(left), ParseNot());
    }
    return left;
  }

  ExprPtr ParseNot() {
    if (AcceptKeyword("NOT")) {
      return MakeUnary(UnaryOp::kNot, ParseNot());
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    auto left = ParseAdditive();
    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      const bool negated = AcceptKeyword("NOT");
      ExpectKeyword("NULL");
      return MakeIsNull(std::move(left), negated);
    }
    // [NOT] BETWEEN a AND b  — desugared.
    bool negate_suffix = false;
    if (CheckKeyword("NOT") &&
        (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN"))) {
      Advance();
      negate_suffix = true;
    }
    if (AcceptKeyword("BETWEEN")) {
      auto low = ParseAdditive();
      ExpectKeyword("AND");
      auto high = ParseAdditive();
      auto lower_bound =
          MakeBinary(BinaryOp::kGreaterEq, left->Clone(), std::move(low));
      auto upper_bound =
          MakeBinary(BinaryOp::kLessEq, std::move(left), std::move(high));
      auto range = MakeBinary(BinaryOp::kAnd, std::move(lower_bound),
                              std::move(upper_bound));
      return negate_suffix ? MakeUnary(UnaryOp::kNot, std::move(range))
                           : std::move(range);
    }
    // [NOT] IN (literal list) — desugared to an OR chain.
    if (AcceptKeyword("IN")) {
      Expect(TokenKind::kLParen, "'('");
      ExprPtr chain;
      do {
        auto candidate = ParseExpr();
        auto eq = MakeBinary(BinaryOp::kEq, left->Clone(),
                             std::move(candidate));
        chain = chain ? MakeBinary(BinaryOp::kOr, std::move(chain),
                                   std::move(eq))
                      : std::move(eq);
      } while (Accept(TokenKind::kComma));
      Expect(TokenKind::kRParen, "')'");
      return negate_suffix ? MakeUnary(UnaryOp::kNot, std::move(chain))
                           : std::move(chain);
    }
    static constexpr std::pair<TokenKind, BinaryOp> kOps[] = {
        {TokenKind::kEq, BinaryOp::kEq},
        {TokenKind::kNotEq, BinaryOp::kNotEq},
        {TokenKind::kLess, BinaryOp::kLess},
        {TokenKind::kLessEq, BinaryOp::kLessEq},
        {TokenKind::kGreater, BinaryOp::kGreater},
        {TokenKind::kGreaterEq, BinaryOp::kGreaterEq},
    };
    for (const auto& [token, op] : kOps) {
      if (Accept(token)) {
        return MakeBinary(op, std::move(left), ParseAdditive());
      }
    }
    return left;
  }

  ExprPtr ParseAdditive() {
    auto left = ParseMultiplicative();
    while (true) {
      if (Accept(TokenKind::kPlus)) {
        left = MakeBinary(BinaryOp::kAdd, std::move(left),
                          ParseMultiplicative());
      } else if (Accept(TokenKind::kMinus)) {
        left = MakeBinary(BinaryOp::kSub, std::move(left),
                          ParseMultiplicative());
      } else {
        return left;
      }
    }
  }

  ExprPtr ParseMultiplicative() {
    auto left = ParseUnary();
    while (true) {
      if (Accept(TokenKind::kStar)) {
        left = MakeBinary(BinaryOp::kMul, std::move(left), ParseUnary());
      } else if (Accept(TokenKind::kSlash)) {
        left = MakeBinary(BinaryOp::kDiv, std::move(left), ParseUnary());
      } else if (Accept(TokenKind::kPercent)) {
        left = MakeBinary(BinaryOp::kMod, std::move(left), ParseUnary());
      } else {
        return left;
      }
    }
  }

  ExprPtr ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      return MakeUnary(UnaryOp::kNegate, ParseUnary());
    }
    Accept(TokenKind::kPlus);  // unary plus is a no-op
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIntegerLiteral:
        Advance();
        return MakeLiteral(Value(token.int_value));
      case TokenKind::kDoubleLiteral:
        Advance();
        return MakeLiteral(Value(token.double_value));
      case TokenKind::kStringLiteral:
        Advance();
        return MakeLiteral(Value(token.text));
      case TokenKind::kLParen: {
        Advance();
        auto inner = ParseExpr();
        Expect(TokenKind::kRParen, "')'");
        return inner;
      }
      case TokenKind::kQuestion:
        Advance();
        return MakeParameter(param_count_++);
      case TokenKind::kKeyword:
        if (IsSoftKeyword(token)) return ParseIdentifierExpr();
        if (AcceptKeyword("NULL")) return MakeLiteral(Value::Null());
        if (AcceptKeyword("TRUE")) return MakeLiteral(Value(int64_t{1}));
        if (AcceptKeyword("FALSE")) return MakeLiteral(Value(int64_t{0}));
        if (AcceptKeyword("INFINITY")) {
          return MakeLiteral(
              Value(std::numeric_limits<double>::infinity()));
        }
        if (CheckKeyword("CASE")) return ParseCase();
        Fail("unexpected " + DescribeToken(token) + " in expression");
      case TokenKind::kIdentifier:
        return ParseIdentifierExpr();
      default:
        Fail("unexpected " + DescribeToken(token) + " in expression");
    }
  }

  ExprPtr ParseCase() {
    ExpectKeyword("CASE");
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kCase;
    if (!CheckKeyword("WHEN")) expr->case_operand = ParseExpr();
    while (AcceptKeyword("WHEN")) {
      CaseWhen when;
      when.condition = ParseExpr();
      ExpectKeyword("THEN");
      when.result = ParseExpr();
      expr->whens.push_back(std::move(when));
    }
    if (expr->whens.empty()) Fail("CASE requires at least one WHEN");
    if (AcceptKeyword("ELSE")) expr->else_expr = ParseExpr();
    ExpectKeyword("END");
    return expr;
  }

  ExprPtr ParseIdentifierExpr() {
    const std::string name = ExpectIdentifier("identifier");
    // Function or aggregate call.
    if (Check(TokenKind::kLParen)) {
      const std::string upper = strings::ToUpper(name);
      Advance();  // '('
      const auto agg_it = AggregateNames().find(upper);
      if (agg_it != AggregateNames().end()) {
        if (Accept(TokenKind::kStar)) {
          Expect(TokenKind::kRParen, "')'");
          if (agg_it->second != AggFunc::kCount) {
            Fail("'*' argument is only valid for COUNT");
          }
          return MakeAggregate(AggFunc::kCount, nullptr, /*star=*/true);
        }
        const bool distinct = AcceptKeyword("DISTINCT");
        auto arg = ParseExpr();
        Expect(TokenKind::kRParen, "')'");
        return MakeAggregate(agg_it->second, std::move(arg), false, distinct);
      }
      std::vector<ExprPtr> args;
      if (!Check(TokenKind::kRParen)) {
        do {
          args.push_back(ParseExpr());
        } while (Accept(TokenKind::kComma));
      }
      Expect(TokenKind::kRParen, "')'");
      return MakeFunction(upper, std::move(args));
    }
    // Qualified column: name.column or name.*
    if (Accept(TokenKind::kDot)) {
      if (Accept(TokenKind::kStar)) {
        auto star = MakeStar();
        star->qualifier = name;
        return star;
      }
      return MakeColumnRef(name, ExpectIdentifier("column name"));
    }
    return MakeColumnRef({}, name);
  }

  std::string_view source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int param_count_ = 0;  // `?` placeholders seen, in source order
};

}  // namespace

StatementPtr ParseStatement(std::string_view source) {
  Parser parser(source);
  return parser.ParseSingleStatement();
}

std::vector<StatementPtr> ParseScript(std::string_view source) {
  Parser parser(source);
  return parser.ParseAll();
}

SelectPtr ParseSelect(std::string_view source) {
  Parser parser(source);
  return parser.ParseBareSelect();
}

}  // namespace sqloop::sql
