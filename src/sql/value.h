// Runtime value type shared by the SQL frontend (literals) and the minidb
// engine (stored cells). SQLoop's supported column types are 64-bit
// integers, doubles, and text; NULL is first-class.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace sqloop {

enum class ValueType { kNull, kInt64, kDouble, kText };

const char* ValueTypeName(ValueType type) noexcept;

/// A single SQL cell. Small, regular, value-semantic.
class Value {
 public:
  Value() noexcept : data_(std::monostate{}) {}
  explicit Value(int64_t v) noexcept : data_(v) {}
  explicit Value(double v) noexcept : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Null() noexcept { return Value{}; }

  bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(data_);
  }
  bool is_int() const noexcept {
    return std::holds_alternative<int64_t>(data_);
  }
  bool is_double() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  bool is_text() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }
  bool is_numeric() const noexcept { return is_int() || is_double(); }

  ValueType type() const noexcept {
    if (is_null()) return ValueType::kNull;
    if (is_int()) return ValueType::kInt64;
    if (is_double()) return ValueType::kDouble;
    return ValueType::kText;
  }

  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_text() const { return std::get<std::string>(data_); }

  // Unchecked variants for kernel loops where the caller has already
  // established the stored alternative (schema-typed non-NULL cells):
  // same reads without std::get's throw-check.
  int64_t int_unchecked() const noexcept {
    return *std::get_if<int64_t>(&data_);
  }
  double double_unchecked() const noexcept {
    return *std::get_if<double>(&data_);
  }
  const std::string& text_unchecked() const noexcept {
    return *std::get_if<std::string>(&data_);
  }

  /// Numeric view: ints widen to double. Throws std::bad_variant_access on
  /// text/null — callers check is_numeric() first.
  double NumericAsDouble() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// SQL equality (NULL == NULL is false; use SqlIsDistinct for grouping).
  friend bool operator==(const Value& a, const Value& b) noexcept;

  /// Total ordering used for indexes/sorting: NULL < numbers < text.
  /// Numbers compare across int/double.
  static int Compare(const Value& a, const Value& b) noexcept;

  /// Grouping/key equality: NULLs compare equal to each other.
  static bool KeyEquals(const Value& a, const Value& b) noexcept;

  /// Hash consistent with KeyEquals (ints and equal doubles may hash
  /// differently only when they are distinguishable by Compare).
  size_t Hash() const noexcept;

  /// Renders the value as SQL literal text (quotes/escapes strings,
  /// prints NULL). Used by the statement printers and message-table writers.
  std::string ToSqlLiteral() const;

  /// Human-readable rendering (no quotes on text).
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueKeyHash {
  size_t operator()(const Value& v) const noexcept { return v.Hash(); }
};
struct ValueKeyEq {
  bool operator()(const Value& a, const Value& b) const noexcept {
    return Value::KeyEquals(a, b);
  }
};

}  // namespace sqloop
