// SQL tokenizer. Keywords are recognized case-insensitively; anything
// alphabetic that is not a keyword is an identifier. Supports '--' line
// comments and /* block */ comments.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sql/token.h"

namespace sqloop::sql {

/// Tokenizes the whole statement up front (SQL statements are short; this
/// keeps the parser simple and the error offsets exact). Throws ParseError.
std::vector<Token> Tokenize(std::string_view source);

/// True if `word` (upper-case) is a reserved SQL keyword in this grammar.
bool IsReservedKeyword(std::string_view upper_word) noexcept;

}  // namespace sqloop::sql
