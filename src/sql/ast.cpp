#include "sql/ast.h"

namespace sqloop::sql {

const char* AggFuncName(AggFunc f) noexcept {
  switch (f) {
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNotEq: return "!=";
    case BinaryOp::kLess: return "<";
    case BinaryOp::kLessEq: return "<=";
    case BinaryOp::kGreater: return ">";
    case BinaryOp::kGreaterEq: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->qualifier = qualifier;
  out->column = column;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  out->function_name = function_name;
  out->args.reserve(args.size());
  for (const auto& arg : args) out->args.push_back(arg->Clone());
  out->agg_func = agg_func;
  out->agg_star = agg_star;
  out->agg_distinct = agg_distinct;
  if (case_operand) out->case_operand = case_operand->Clone();
  out->whens.reserve(whens.size());
  for (const auto& w : whens) {
    CaseWhen copy;
    copy.condition = w.condition->Clone();
    copy.result = w.result->Clone();
    out->whens.push_back(std::move(copy));
  }
  if (else_expr) out->else_expr = else_expr->Clone();
  out->is_not_null = is_not_null;
  out->param_index = param_index;
  return out;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(lhs);
  e->right = std::move(rhs);
  return e;
}

ExprPtr MakeFunction(std::string upper_name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = std::move(upper_name);
  e->args = std::move(args);
  return e;
}

ExprPtr MakeAggregate(AggFunc f, ExprPtr arg, bool star, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_func = f;
  e->agg_star = star;
  e->agg_distinct = distinct;
  if (arg) e->args.push_back(std::move(arg));
  return e;
}

ExprPtr MakeIsNull(ExprPtr operand, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIsNull;
  e->left = std::move(operand);
  e->is_not_null = negated;
  return e;
}

ExprPtr MakeParameter(int index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kParameter;
  e->param_index = index;
  return e;
}

ExprPtr AndTogether(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}

bool ExprEquals(const Expr& a, const Expr& b) noexcept {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kLiteral:
      return Value::KeyEquals(a.literal, b.literal);
    case ExprKind::kColumnRef:
      return a.qualifier == b.qualifier && a.column == b.column;
    case ExprKind::kStar:
      return true;
    case ExprKind::kUnary:
      return a.unary_op == b.unary_op && ExprEquals(*a.left, *b.left);
    case ExprKind::kBinary:
      return a.binary_op == b.binary_op && ExprEquals(*a.left, *b.left) &&
             ExprEquals(*a.right, *b.right);
    case ExprKind::kFunction: {
      if (a.function_name != b.function_name ||
          a.args.size() != b.args.size()) {
        return false;
      }
      for (size_t i = 0; i < a.args.size(); ++i) {
        if (!ExprEquals(*a.args[i], *b.args[i])) return false;
      }
      return true;
    }
    case ExprKind::kAggregate: {
      if (a.agg_func != b.agg_func || a.agg_star != b.agg_star ||
          a.agg_distinct != b.agg_distinct ||
          a.args.size() != b.args.size()) {
        return false;
      }
      return a.args.empty() || ExprEquals(*a.args[0], *b.args[0]);
    }
    case ExprKind::kCase: {
      if (static_cast<bool>(a.case_operand) !=
              static_cast<bool>(b.case_operand) ||
          a.whens.size() != b.whens.size() ||
          static_cast<bool>(a.else_expr) != static_cast<bool>(b.else_expr)) {
        return false;
      }
      if (a.case_operand && !ExprEquals(*a.case_operand, *b.case_operand))
        return false;
      for (size_t i = 0; i < a.whens.size(); ++i) {
        if (!ExprEquals(*a.whens[i].condition, *b.whens[i].condition) ||
            !ExprEquals(*a.whens[i].result, *b.whens[i].result)) {
          return false;
        }
      }
      return !a.else_expr || ExprEquals(*a.else_expr, *b.else_expr);
    }
    case ExprKind::kIsNull:
      return a.is_not_null == b.is_not_null && ExprEquals(*a.left, *b.left);
    case ExprKind::kParameter:
      return a.param_index == b.param_index;
  }
  return false;
}

void VisitExpr(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  fn(expr);
  if (expr.left) VisitExpr(*expr.left, fn);
  if (expr.right) VisitExpr(*expr.right, fn);
  for (const auto& arg : expr.args) VisitExpr(*arg, fn);
  if (expr.case_operand) VisitExpr(*expr.case_operand, fn);
  for (const auto& w : expr.whens) {
    VisitExpr(*w.condition, fn);
    VisitExpr(*w.result, fn);
  }
  if (expr.else_expr) VisitExpr(*expr.else_expr, fn);
}

void VisitExprMutable(Expr& expr, const std::function<void(Expr&)>& fn) {
  fn(expr);
  if (expr.left) VisitExprMutable(*expr.left, fn);
  if (expr.right) VisitExprMutable(*expr.right, fn);
  for (auto& arg : expr.args) VisitExprMutable(*arg, fn);
  if (expr.case_operand) VisitExprMutable(*expr.case_operand, fn);
  for (auto& w : expr.whens) {
    VisitExprMutable(*w.condition, fn);
    VisitExprMutable(*w.result, fn);
  }
  if (expr.else_expr) VisitExprMutable(*expr.else_expr, fn);
}

TableRefPtr TableRef::Clone() const {
  auto out = std::make_unique<TableRef>();
  out->kind = kind;
  out->table_name = table_name;
  out->alias = alias;
  out->join_kind = join_kind;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  if (on_condition) out->on_condition = on_condition->Clone();
  if (subquery) out->subquery = subquery->Clone();
  return out;
}

TableRefPtr MakeBaseTable(std::string table, std::string alias) {
  auto ref = std::make_unique<TableRef>();
  ref->kind = TableRefKind::kBase;
  ref->table_name = std::move(table);
  ref->alias = alias.empty() ? ref->table_name : std::move(alias);
  return ref;
}

TableRefPtr MakeJoin(JoinKind kind, TableRefPtr left, TableRefPtr right,
                     ExprPtr on) {
  auto ref = std::make_unique<TableRef>();
  ref->kind = TableRefKind::kJoin;
  ref->join_kind = kind;
  ref->left = std::move(left);
  ref->right = std::move(right);
  ref->on_condition = std::move(on);
  return ref;
}

TableRefPtr MakeSubquery(SelectPtr select, std::string alias) {
  auto ref = std::make_unique<TableRef>();
  ref->kind = TableRefKind::kSubquery;
  ref->subquery = std::move(select);
  ref->alias = std::move(alias);
  return ref;
}

void VisitBaseTables(const TableRef& ref,
                     const std::function<void(const TableRef&)>& fn) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      fn(ref);
      return;
    case TableRefKind::kJoin:
      VisitBaseTables(*ref.left, fn);
      VisitBaseTables(*ref.right, fn);
      return;
    case TableRefKind::kSubquery:
      if (ref.subquery) {
        for (const auto& core : ref.subquery->cores) {
          if (core.from) VisitBaseTables(*core.from, fn);
        }
      }
      return;
  }
}

void VisitTableRefsMutable(TableRef& ref,
                           const std::function<void(TableRef&)>& fn) {
  fn(ref);
  if (ref.left) VisitTableRefsMutable(*ref.left, fn);
  if (ref.right) VisitTableRefsMutable(*ref.right, fn);
  if (ref.subquery) {
    for (auto& core : ref.subquery->cores) {
      if (core.from) VisitTableRefsMutable(*core.from, fn);
    }
  }
}

SelectCore SelectCore::Clone() const {
  SelectCore out;
  out.distinct = distinct;
  out.items.reserve(items.size());
  for (const auto& item : items) {
    SelectItem copy;
    copy.expr = item.expr->Clone();
    copy.alias = item.alias;
    out.items.push_back(std::move(copy));
  }
  if (from) out.from = from->Clone();
  if (where) out.where = where->Clone();
  out.group_by.reserve(group_by.size());
  for (const auto& g : group_by) out.group_by.push_back(g->Clone());
  if (having) out.having = having->Clone();
  return out;
}

SelectPtr SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->cores.reserve(cores.size());
  for (const auto& core : cores) out->cores.push_back(core.Clone());
  out->set_ops = set_ops;
  out->order_by.reserve(order_by.size());
  for (const auto& o : order_by) {
    OrderItem copy;
    copy.expr = o.expr->Clone();
    copy.ascending = o.ascending;
    out->order_by.push_back(std::move(copy));
  }
  out->limit = limit;
  out->offset = offset;
  return out;
}

Termination Termination::Clone() const {
  Termination out;
  out.kind = kind;
  out.count = count;
  out.delta = delta;
  if (probe) out.probe = probe->Clone();
  out.comparator = comparator;
  out.bound = bound;
  return out;
}

WithClause WithClause::Clone() const {
  WithClause out;
  out.kind = kind;
  out.name = name;
  out.columns = columns;
  if (seed) out.seed = seed->Clone();
  if (step) out.step = step->Clone();
  out.termination = termination.Clone();
  if (final_query) out.final_query = final_query->Clone();
  return out;
}

StatementPtr Statement::Clone() const {
  auto out = std::make_unique<Statement>();
  out->kind = kind;
  if (select) out->select = select->Clone();
  out->table_name = table_name;
  out->columns = columns;
  out->primary_key_index = primary_key_index;
  out->if_not_exists = if_not_exists;
  out->unlogged = unlogged;
  out->engine_option = engine_option;
  out->if_exists = if_exists;
  out->index_name = index_name;
  out->index_columns = index_columns;
  if (view_select) out->view_select = view_select->Clone();
  out->insert_columns = insert_columns;
  out->insert_rows.reserve(insert_rows.size());
  for (const auto& row : insert_rows) {
    std::vector<ExprPtr> copy;
    copy.reserve(row.size());
    for (const auto& value : row) copy.push_back(value->Clone());
    out->insert_rows.push_back(std::move(copy));
  }
  if (insert_select) out->insert_select = insert_select->Clone();
  out->file_path = file_path;
  out->update_alias = update_alias;
  out->set_items.reserve(set_items.size());
  for (const auto& [column, expr] : set_items) {
    out->set_items.emplace_back(column, expr->Clone());
  }
  if (update_from) out->update_from = update_from->Clone();
  if (where) out->where = where->Clone();
  out->with = with.Clone();
  return out;
}

namespace {

void VisitSelectExprsMutable(SelectStmt& select,
                             const std::function<void(Expr&)>& fn);

void VisitTableRefExprsMutable(TableRef& ref,
                               const std::function<void(Expr&)>& fn) {
  if (ref.on_condition) VisitExprMutable(*ref.on_condition, fn);
  if (ref.left) VisitTableRefExprsMutable(*ref.left, fn);
  if (ref.right) VisitTableRefExprsMutable(*ref.right, fn);
  if (ref.subquery) VisitSelectExprsMutable(*ref.subquery, fn);
}

void VisitSelectExprsMutable(SelectStmt& select,
                             const std::function<void(Expr&)>& fn) {
  for (auto& core : select.cores) {
    for (auto& item : core.items) VisitExprMutable(*item.expr, fn);
    if (core.from) VisitTableRefExprsMutable(*core.from, fn);
    if (core.where) VisitExprMutable(*core.where, fn);
    for (auto& g : core.group_by) VisitExprMutable(*g, fn);
    if (core.having) VisitExprMutable(*core.having, fn);
  }
  for (auto& o : select.order_by) VisitExprMutable(*o.expr, fn);
}

}  // namespace

void VisitStatementExprsMutable(Statement& stmt,
                                const std::function<void(Expr&)>& fn) {
  if (stmt.select) VisitSelectExprsMutable(*stmt.select, fn);
  if (stmt.view_select) VisitSelectExprsMutable(*stmt.view_select, fn);
  for (auto& row : stmt.insert_rows) {
    for (auto& value : row) VisitExprMutable(*value, fn);
  }
  if (stmt.insert_select) VisitSelectExprsMutable(*stmt.insert_select, fn);
  for (auto& [column, expr] : stmt.set_items) VisitExprMutable(*expr, fn);
  if (stmt.update_from) VisitTableRefExprsMutable(*stmt.update_from, fn);
  if (stmt.where) VisitExprMutable(*stmt.where, fn);
  if (stmt.with.seed) VisitSelectExprsMutable(*stmt.with.seed, fn);
  if (stmt.with.step) VisitSelectExprsMutable(*stmt.with.step, fn);
  if (stmt.with.termination.probe) {
    VisitSelectExprsMutable(*stmt.with.termination.probe, fn);
  }
  if (stmt.with.final_query) {
    VisitSelectExprsMutable(*stmt.with.final_query, fn);
  }
}

void VisitStatementExprs(const Statement& stmt,
                         const std::function<void(const Expr&)>& fn) {
  // The mutable walker never adds/removes nodes itself and the callback
  // here only observes, so delegating is safe.
  VisitStatementExprsMutable(
      const_cast<Statement&>(stmt),
      [&fn](Expr& expr) { fn(static_cast<const Expr&>(expr)); });
}

}  // namespace sqloop::sql
