// Token model for the hand-written SQL lexer (the repo's stand-in for the
// paper's antlr4-generated parser).
#pragma once

#include <cstdint>
#include <string>

namespace sqloop::sql {

enum class TokenKind {
  kEnd,
  kIdentifier,       // possibly quoted; `text` holds the unquoted spelling
  kKeyword,          // `text` holds the upper-cased keyword
  kIntegerLiteral,   // `int_value`
  kDoubleLiteral,    // `double_value`
  kStringLiteral,    // `text` holds the unescaped body
  // Operators and punctuation.
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNotEq, kLess, kLessEq, kGreater, kGreaterEq,
  kLParen, kRParen, kComma, kDot, kSemicolon,
  kQuestion,         // `?` — positional parameter placeholder
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;          // identifier / keyword (original case) / string
  std::string upper;         // upper-cased spelling, set for keywords only
  int64_t int_value = 0;     // for kIntegerLiteral
  double double_value = 0;   // for kDoubleLiteral
  size_t offset = 0;         // byte offset in the source, for diagnostics
  char quote = '\0';         // identifier quote char if the source quoted it

  bool IsKeyword(std::string_view word) const noexcept {
    return kind == TokenKind::kKeyword && upper == word;
  }
};

/// Human-readable token description for error messages.
std::string DescribeToken(const Token& token);

}  // namespace sqloop::sql
