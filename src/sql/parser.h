// Recursive-descent parser for the SQL subset plus SQLoop's iterative-CTE
// extension. This is the repo's equivalent of the paper's antlr4-based
// custom parser (§IV-B): it classifies statements, and for CTEs it exposes
// the seed (R0), step (Ri), termination condition (Tc), and final query
// (Qf) as separate ASTs.
#pragma once

#include <string_view>
#include <vector>

#include "sql/ast.h"

namespace sqloop::sql {

/// Parses exactly one statement (a trailing ';' is allowed). Throws
/// ParseError on malformed input.
StatementPtr ParseStatement(std::string_view source);

/// Parses a ';'-separated script into its statements. Empty statements are
/// skipped.
std::vector<StatementPtr> ParseScript(std::string_view source);

/// Parses a bare SELECT (used for termination probes and priority queries).
SelectPtr ParseSelect(std::string_view source);

}  // namespace sqloop::sql
