#include "sql/value.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace sqloop {

const char* ValueTypeName(ValueType type) noexcept {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "BIGINT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kText:
      return "TEXT";
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) noexcept {
  if (a.is_null() || b.is_null()) return false;
  return Value::Compare(a, b) == 0;
}

int Value::Compare(const Value& a, const Value& b) noexcept {
  const auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  const int ra = rank(a);
  const int rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      if (a.is_int() && b.is_int()) {
        const int64_t x = a.as_int();
        const int64_t y = b.as_int();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      const double x = a.NumericAsDouble();
      const double y = b.NumericAsDouble();
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    default: {
      const int c = a.as_text().compare(b.as_text());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

bool Value::KeyEquals(const Value& a, const Value& b) noexcept {
  if (a.is_null() && b.is_null()) return true;
  if (a.is_null() || b.is_null()) return false;
  return Compare(a, b) == 0;
}

size_t Value::Hash() const noexcept {
  if (is_null()) return 0x9E3779B97F4A7C15ULL;
  if (is_numeric()) {
    // Ints and integral doubles must hash alike because Compare treats
    // them as equal across representations.
    const double d = NumericAsDouble();
    if (is_int() || (std::floor(d) == d && std::isfinite(d) &&
                     std::abs(d) < 9.2e18)) {
      const auto i = is_int() ? as_int() : static_cast<int64_t>(d);
      return std::hash<int64_t>{}(i) ^ 0x517CC1B727220A95ULL;
    }
    return std::hash<double>{}(d) ^ 0x517CC1B727220A95ULL;
  }
  return std::hash<std::string>{}(as_text());
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_text()) {
    std::string out = "'";
    for (const char c : as_text()) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += '\'';
    return out;
  }
  return ToString();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    const double d = as_double();
    if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
    if (std::isnan(d)) return "NaN";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", d);
    return buffer;
  }
  return as_text();
}

}  // namespace sqloop
