// Abstract syntax tree for the SQL subset plus the SQLoop iterative-CTE
// extension (paper §III). One tagged struct per syntactic category keeps
// cloning and rewriting (which the SQLoop analyzer does heavily) simple.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sql/value.h"

namespace sqloop::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,       // bare `*` in SELECT lists
  kUnary,
  kBinary,
  kFunction,   // scalar functions: COALESCE, LEAST, GREATEST, ABS
  kAggregate,  // SUM / MIN / MAX / COUNT / AVG
  kCase,
  kIsNull,
  kParameter,  // `?` placeholder; bound to a literal before execution
};

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNotEq, kLess, kLessEq, kGreater, kGreaterEq,
  kAnd, kOr,
};

enum class AggFunc { kSum, kMin, kMax, kCount, kAvg };

const char* AggFuncName(AggFunc f) noexcept;
const char* BinaryOpName(BinaryOp op) noexcept;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct CaseWhen {
  ExprPtr condition;
  ExprPtr result;
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef — `qualifier` is the table name/alias, possibly empty.
  std::string qualifier;
  std::string column;

  // kUnary (operand in `left`) / kBinary
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;
  ExprPtr right;

  // kFunction — upper-case name; kAggregate argument also lives in args[0].
  std::string function_name;
  std::vector<ExprPtr> args;

  // kAggregate
  AggFunc agg_func = AggFunc::kSum;
  bool agg_star = false;      // COUNT(*)
  bool agg_distinct = false;  // COUNT(DISTINCT x)

  // kCase
  ExprPtr case_operand;  // optional (simple CASE); null for searched CASE
  std::vector<CaseWhen> whens;
  ExprPtr else_expr;  // optional

  // kIsNull
  bool is_not_null = false;

  // kParameter — 0-based ordinal of the `?` in the statement text. Kept on
  // the node even after a bind rewrites it to kLiteral, so a prepared
  // statement can re-bind the same slot with a new value.
  int param_index = -1;

  ExprPtr Clone() const;
};

// Factory helpers used by the parser and the SQLoop query rewriter.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeStar();
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunction(std::string upper_name, std::vector<ExprPtr> args);
ExprPtr MakeAggregate(AggFunc f, ExprPtr arg, bool star = false,
                      bool distinct = false);
ExprPtr MakeIsNull(ExprPtr operand, bool negated);
ExprPtr MakeParameter(int index);

/// Ands two (possibly null) predicates together.
ExprPtr AndTogether(ExprPtr a, ExprPtr b);

/// Structural equality (used to match GROUP BY keys to SELECT items).
bool ExprEquals(const Expr& a, const Expr& b) noexcept;

/// Calls `fn` on `expr` and every descendant expression.
void VisitExpr(const Expr& expr, const std::function<void(const Expr&)>& fn);

/// Mutable pre-order visit; `fn` may rewrite nodes in place.
void VisitExprMutable(Expr& expr, const std::function<void(Expr&)>& fn);

// ---------------------------------------------------------------------------
// Table references (FROM clauses)
// ---------------------------------------------------------------------------

enum class TableRefKind { kBase, kJoin, kSubquery };
enum class JoinKind { kInner, kLeft, kCross };

struct SelectStmt;
using SelectPtr = std::unique_ptr<SelectStmt>;

struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

struct TableRef {
  TableRefKind kind = TableRefKind::kBase;

  // kBase
  std::string table_name;

  // kBase / kSubquery: the binding name visible to expressions. For a base
  // table without an alias this equals table_name.
  std::string alias;

  // kJoin
  JoinKind join_kind = JoinKind::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr on_condition;  // null for CROSS

  // kSubquery
  SelectPtr subquery;

  TableRefPtr Clone() const;
};

TableRefPtr MakeBaseTable(std::string table, std::string alias = {});
TableRefPtr MakeJoin(JoinKind kind, TableRefPtr left, TableRefPtr right,
                     ExprPtr on);
TableRefPtr MakeSubquery(SelectPtr select, std::string alias);

/// Calls `fn` for every base-table reference under `ref`.
void VisitBaseTables(const TableRef& ref,
                     const std::function<void(const TableRef&)>& fn);

/// Mutable variant, visiting every TableRef node (joins included).
void VisitTableRefsMutable(TableRef& ref,
                           const std::function<void(TableRef&)>& fn);

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

enum class SetOp { kUnionAll, kUnion };

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // output column name; empty -> derived
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// One SELECT ... FROM ... WHERE ... GROUP BY ... HAVING block.
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRefPtr from;  // null for FROM-less selects (e.g. VALUES-like seeds)
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;

  SelectCore Clone() const;
};

/// A full select statement: one or more cores joined by UNION [ALL],
/// followed by optional ORDER BY / LIMIT.
struct SelectStmt {
  std::vector<SelectCore> cores;  // size >= 1
  std::vector<SetOp> set_ops;     // size == cores.size() - 1
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  SelectPtr Clone() const;
};

// ---------------------------------------------------------------------------
// Iterative-CTE termination conditions (paper Table I)
// ---------------------------------------------------------------------------

struct Termination {
  enum class Kind {
    kIterations,   // UNTIL n ITERATIONS
    kUpdates,      // UNTIL n UPDATES  (fewer than n rows updated)
    kProbeAll,     // UNTIL [DELTA] (expr)        — expr returns |R| rows
    kProbeAny,     // UNTIL ANY [DELTA] (expr)    — expr returns >= 1 row
    kProbeCompare, // UNTIL [DELTA] (expr) <|=|> e
  };

  Kind kind = Kind::kIterations;
  int64_t count = 0;    // kIterations / kUpdates
  bool delta = false;   // probe may reference <R>_delta (previous iteration)
  SelectPtr probe;      // the user's expr query
  char comparator = 0;  // '<', '=', '>' for kProbeCompare
  Value bound;          // e

  Termination Clone() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kCreateTable,
  kDropTable,
  kCreateIndex,
  kDropIndex,
  kCreateView,
  kDropView,
  kInsert,
  kUpdate,
  kDelete,
  kTruncate,
  kDumpTable,     // DUMP TABLE t TO '<path>' — checkpoint fast path
  kRestoreTable,  // RESTORE TABLE t FROM '<path>'
  kCheckTable,    // CHECK TABLE t — content-checksum scrub pass
  kChecksumTable, // CHECKSUM TABLE t — report the maintained checksum (O(1))
  kBegin,
  kCommit,
  kRollback,
  kWith,  // WITH [RECURSIVE|ITERATIVE] ... — both CTE flavors
};

enum class CteKind { kPlain, kRecursive, kIterative };

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  // Raw type spelling as written ("DOUBLE PRECISION", "DOUBLE", ...), kept
  // so engine profiles can enforce their dialect (see sql/dialect.h).
  std::string type_spelling;
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

/// WITH-clause payload. For kPlain the step/termination are unused; for
/// kRecursive the CTE body is `seed UNION ALL step`; for kIterative it is
/// `seed ITERATE step UNTIL termination` (paper §III-A).
struct WithClause {
  CteKind kind = CteKind::kPlain;
  std::string name;
  std::vector<std::string> columns;  // may be empty (derive from seed)
  SelectPtr seed;                    // R0
  SelectPtr step;                    // Ri
  Termination termination;           // Tc (iterative only)
  SelectPtr final_query;             // Qf

  WithClause Clone() const;
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;

  // kSelect
  SelectPtr select;

  // Common DDL/DML target.
  std::string table_name;

  // kCreateTable
  std::vector<ColumnDef> columns;
  int primary_key_index = -1;
  bool if_not_exists = false;
  bool unlogged = false;          // CREATE UNLOGGED TABLE (postgres)
  std::string engine_option;      // trailing ENGINE=<x> (mysql family)

  // kDropTable / kDropIndex / kDropView
  bool if_exists = false;

  // kCreateIndex / kDropIndex
  std::string index_name;
  std::vector<std::string> index_columns;

  // kCreateView
  SelectPtr view_select;

  // kInsert
  std::vector<std::string> insert_columns;
  std::vector<std::vector<ExprPtr>> insert_rows;  // INSERT ... VALUES
  SelectPtr insert_select;                        // INSERT ... SELECT

  // kDumpTable / kRestoreTable
  std::string file_path;

  // kUpdate
  std::string update_alias;
  std::vector<std::pair<std::string, ExprPtr>> set_items;
  TableRefPtr update_from;  // UPDATE ... FROM <ref> (postgres style)
  ExprPtr where;            // kUpdate / kDelete

  // kWith
  WithClause with;

  StatementPtr Clone() const;
};

/// Calls `fn` on every expression in the statement — select lists, WHERE,
/// join conditions, subqueries, VALUES rows, SET items, CTE bodies.
void VisitStatementExprs(const Statement& stmt,
                         const std::function<void(const Expr&)>& fn);

/// Mutable variant; `fn` may rewrite nodes in place (used to bind `?`
/// parameter slots).
void VisitStatementExprsMutable(Statement& stmt,
                                const std::function<void(Expr&)>& fn);

}  // namespace sqloop::sql
